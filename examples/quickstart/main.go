// Quickstart: build ResNet-18, classify a synthetic image, and inspect
// the network through the public dlis API.
package main

import (
	"fmt"
	"log"

	dlis "repro"
)

func main() {
	// Build the paper's CIFAR-10 form of ResNet-18 with deterministic
	// initialisation.
	net, err := dlis.BuildModel("resnet18", 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %s: %d parameters\n", net.NetName, net.ParamCount())

	// Configure the full stack: plain model, OpenMP-style backend,
	// 4 threads, modelled on the Intel i7.
	inst, err := dlis.Instantiate(dlis.StackConfig{
		Model:     "resnet18",
		Technique: dlis.Plain,
		Backend:   dlis.OMP,
		Threads:   4,
		Platform:  "intel-i7",
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Real host inference on one CIFAR-shaped image.
	img := dlis.NewImage(1, 32, 32, 7)
	res := inst.Run(img)
	probs := res.Output
	best := probs.ArgMax()
	fmt.Printf("host inference: class %d in %v\n", best, res.Elapsed)

	// Projected execution time on the modelled platform and the
	// runtime memory footprint.
	fmt.Printf("simulated i7 (4 threads): %.3f s\n", inst.Simulate())
	fmt.Printf("runtime memory:           %.1f MB\n", inst.MemoryMB())
}
