// Quickstart: build ResNet-18, classify a synthetic image, inspect the
// network, and serve batched inference through the transport-agnostic
// client API — all through the public dlis surface.
package main

import (
	"context"
	"fmt"
	"log"

	dlis "repro"
)

func main() {
	// Build the paper's CIFAR-10 form of ResNet-18 with deterministic
	// initialisation.
	net, err := dlis.BuildModel("resnet18", 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %s: %d parameters\n", net.NetName, net.ParamCount())

	// Configure the full stack: plain model, OpenMP-style backend,
	// 4 threads, modelled on the Intel i7.
	inst, err := dlis.Instantiate(dlis.StackConfig{
		Model:     "resnet18",
		Technique: dlis.Plain,
		Backend:   dlis.OMP,
		Threads:   4,
		Platform:  "intel-i7",
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Real host inference on one CIFAR-shaped image.
	img := dlis.NewImage(1, 32, 32, 7)
	res := inst.Run(img)
	probs := res.Output
	best := probs.ArgMax()
	fmt.Printf("host inference: class %d in %v\n", best, res.Elapsed)

	// Projected execution time on the modelled platform and the
	// runtime memory footprint.
	fmt.Printf("simulated i7 (4 threads): %.3f s\n", inst.Simulate())
	fmt.Printf("runtime memory:           %.1f MB\n", inst.MemoryMB())

	// Serve the same stack behind the batched inference server and
	// submit through the transport-agnostic Client API. One
	// Request{Target, Images, SLO} shape covers direct pools, SLO
	// routing and multi-image batches — and the identical call works
	// over HTTP by swapping NewLocalClient for NewHTTPClient.
	cfg := dlis.DefaultServerConfig()
	cfg.Stacks = []dlis.ServerStack{{Name: "mini", Stack: dlis.StackConfig{
		Model: "mini-vgg", Technique: dlis.Plain,
		Backend: dlis.OMP, Threads: 1, Platform: "odroid-xu4", Seed: 42,
	}}}
	srv, err := dlis.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	client := dlis.NewLocalClient(srv)
	defer client.Close() // graceful drain

	ctx := context.Background()
	resp, err := client.InferSync(ctx, dlis.Request{
		Target: "mini",
		Images: []*dlis.Tensor{dlis.NewImage(1, 32, 32, 7), dlis.NewImage(1, 32, 32, 8)},
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range resp.Results {
		fmt.Printf("served image %d: class %d (batch of %d, %v end to end)\n",
			i, r.Class, r.BatchSize, r.Latency)
	}
}
