// Pareto: real training on the synthetic dataset — train a mini VGG,
// then iteratively weight-prune it with fine-tuning and print the
// accuracy/sparsity Pareto curve (the Fig. 3a procedure, scaled to run
// on a laptop in minutes).
package main

import (
	"fmt"
	"log"

	dlis "repro"
	"repro/internal/compress/prune"
	"repro/internal/train"
)

func main() {
	trainSet, testSet := dlis.SyntheticCIFAR(400, 150, 11)

	net, err := dlis.BuildModel("mini-vgg", 11)
	if err != nil {
		log.Fatal(err)
	}
	cfg := dlis.DefaultTrainConfig()
	cfg.Epochs = 3
	cfg.Verbose = true
	fmt.Println("pre-training mini-vgg on the synthetic CIFAR task...")
	base := dlis.Train(net, trainSet, testSet, cfg)
	fmt.Printf("baseline test accuracy: %.1f%%\n\n", base.TestAccuracy*100)

	curve := prune.Iterative(net, trainSet, testSet, prune.IterativeConfig{
		Targets: []float64{0.5, 0.7, 0.85},
		FineTune: train.Config{
			Epochs: 1, BatchSize: 32,
			Schedule: train.Schedule{Base: 0.005}, Seed: 13,
		},
	})
	fmt.Printf("%-14s %-12s\n", "sparsity(%)", "accuracy(%)")
	for _, p := range curve {
		fmt.Printf("%-14.1f %-12.1f\n", p.Sparsity*100, p.Accuracy*100)
	}
	fmt.Println("\nthe curve holds flat through moderate sparsity then falls — the Fig. 3a shape.")
}
