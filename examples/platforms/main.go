// Platforms: compare the three execution backends (OpenMP-style CPU,
// hand-tuned OpenCL GPU, CLBlast GEMM library) across the three plain
// models on the Odroid-XU4 model — the paper's Fig. 6 — and show the
// image-size crossover where the GEMM library starts to pay off (§V-F).
package main

import (
	"fmt"
	"log"

	dlis "repro"
)

func main() {
	fmt.Println("== plain models on odroid-xu4 (seconds) ==")
	fmt.Printf("%-12s %10s %10s %10s\n", "model", "openmp", "opencl", "clblast")
	for _, model := range dlis.ModelNames() {
		times := map[dlis.Backend]float64{}
		for _, backend := range []dlis.Backend{dlis.OMP, dlis.OCL, dlis.CLBlast} {
			inst, err := dlis.Instantiate(dlis.StackConfig{
				Model:     model,
				Technique: dlis.Plain,
				Backend:   backend,
				Threads:   8,
				Platform:  "odroid-xu4",
				Seed:      1,
			})
			if err != nil {
				log.Fatal(err)
			}
			times[backend] = inst.Simulate()
		}
		fmt.Printf("%-12s %10.3f %10.3f %10.3f\n", model,
			times[dlis.OMP], times[dlis.OCL], times[dlis.CLBlast])
	}
	fmt.Println()
	fmt.Println("hand-tuned OpenCL wins; the tuned GEMM library loses badly at CIFAR sizes.")

	od, err := dlis.PlatformByName("odroid-xu4")
	if err != nil {
		log.Fatal(err)
	}
	x := od.GPU.CrossoverImageSize(512, 512, 3, 8)
	fmt.Printf("\ndeep-layer crossover: CLBlast overtakes hand-tuned kernels at %dx%d inputs\n", x, x)
	fmt.Println("(which is why it wins for ImageNet's 224x224 but not CIFAR's 32x32).")
}
