// Deploy: the paper's end-use scenario — given deployment constraints
// (minimum accuracy, maximum inference time, maximum memory) on a target
// platform, search the Deep Learning Inference Stack for the best
// configuration. This encodes §I's promise: "given constraints of
// accuracy, inference time, and memory footprint ... significant
// performance enhancements can be achieved", including the headline
// result that a compressed large network beats hand-designed MobileNet.
//
// The search result is also emitted as a ready-to-boot fleet config
// (dlis-serve -config): the winning stack behind an SLO-routed
// endpoint at the Table V operating points, closing the loop from
// constraint search to deployable topology.
package main

import (
	"encoding/json"
	"fmt"
	"log"

	dlis "repro"
)

type candidate struct {
	cfg      dlis.StackConfig
	accuracy float64
	seconds  float64
	memoryMB float64
}

func main() {
	const (
		platform    = "odroid-xu4"
		threads     = 8
		minAccuracy = 90.0 // percent
	)
	fmt.Printf("constraints: accuracy ≥ %.0f%%, platform %s, %d threads\n\n", minAccuracy, platform, threads)

	var candidates []candidate
	for _, model := range dlis.ModelNames() {
		// Table V holds each technique's operating point at 90%.
		points, err := dlis.TableV(model)
		if err != nil {
			log.Fatal(err)
		}
		for _, tech := range []dlis.Technique{dlis.Plain, dlis.WeightPruned, dlis.ChannelPruned, dlis.Quantised} {
			inst, err := dlis.Instantiate(dlis.StackConfig{
				Model: model, Technique: tech, Point: points[tech],
				Backend: dlis.OMP, Threads: threads, Platform: platform, Seed: 1,
			})
			if err != nil {
				log.Fatal(err)
			}
			candidates = append(candidates, candidate{
				cfg:      inst.Config,
				accuracy: minAccuracy, // Table V points sit on the 90% contour
				seconds:  inst.Simulate(),
				memoryMB: inst.MemoryMB(),
			})
		}
	}

	fmt.Printf("%-12s %-18s %10s %12s\n", "model", "technique", "time (s)", "memory (MB)")
	best := candidates[0]
	for _, c := range candidates {
		fmt.Printf("%-12s %-18s %10.3f %12.1f\n", c.cfg.Model, c.cfg.Technique, c.seconds, c.memoryMB)
		if c.seconds < best.seconds {
			best = c
		}
	}
	fmt.Printf("\nfastest configuration meeting the constraint: %s + %s (%.3f s, %.1f MB)\n",
		best.cfg.Model, best.cfg.Technique, best.seconds, best.memoryMB)
	fmt.Println("— a channel-pruned large network, not the hand-designed small one (paper §V-E).")

	// Close the loop: render the winner as a fleet config, prove it
	// round-trips through the strict parser and validates, and print it
	// ready to save and boot with `dlis-serve -config deploy.json`.
	data, err := json.MarshalIndent(fleetFor(best), "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if cfg, err := dlis.ParseFleetConfig(data); err != nil {
		log.Fatal(err)
	} else if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndeployable fleet config (dlis-serve -config deploy.json):\n%s\n", data)
}

// fleetFor lowers the winning candidate into the declarative fleet
// schema: one pool hosting the stack at its searched operating point.
func fleetFor(c candidate) *dlis.FleetConfig {
	m := dlis.FleetModel{
		Kind:      c.cfg.Model,
		Technique: c.cfg.Technique.String(),
		Threads:   c.cfg.Threads,
		Platform:  c.cfg.Platform,
	}
	if c.cfg.Technique != dlis.Plain {
		m.Point = &dlis.FleetOperatingPoint{
			Sparsity:        c.cfg.Point.Sparsity,
			CompressionRate: c.cfg.Point.CompressionRate,
			TTQThreshold:    c.cfg.Point.TTQThreshold,
			TTQSparsity:     c.cfg.Point.TTQSparsity,
		}
	}
	return &dlis.FleetConfig{
		Server: &dlis.FleetServer{Seed: c.cfg.Seed},
		Models: []dlis.FleetModel{m},
	}
}
