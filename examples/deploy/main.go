// Deploy: the paper's end-use scenario — given deployment constraints
// (minimum accuracy, maximum inference time, maximum memory) on a target
// platform, search the Deep Learning Inference Stack for the best
// configuration. This encodes §I's promise: "given constraints of
// accuracy, inference time, and memory footprint ... significant
// performance enhancements can be achieved", including the headline
// result that a compressed large network beats hand-designed MobileNet.
package main

import (
	"fmt"
	"log"

	dlis "repro"
)

type candidate struct {
	cfg      dlis.StackConfig
	accuracy float64
	seconds  float64
	memoryMB float64
}

func main() {
	const (
		platform    = "odroid-xu4"
		threads     = 8
		minAccuracy = 90.0 // percent
	)
	fmt.Printf("constraints: accuracy ≥ %.0f%%, platform %s, %d threads\n\n", minAccuracy, platform, threads)

	var candidates []candidate
	for _, model := range dlis.ModelNames() {
		// Table V holds each technique's operating point at 90%.
		points, err := dlis.TableV(model)
		if err != nil {
			log.Fatal(err)
		}
		for _, tech := range []dlis.Technique{dlis.Plain, dlis.WeightPruned, dlis.ChannelPruned, dlis.Quantised} {
			inst, err := dlis.Instantiate(dlis.StackConfig{
				Model: model, Technique: tech, Point: points[tech],
				Backend: dlis.OMP, Threads: threads, Platform: platform, Seed: 1,
			})
			if err != nil {
				log.Fatal(err)
			}
			candidates = append(candidates, candidate{
				cfg:      inst.Config,
				accuracy: minAccuracy, // Table V points sit on the 90% contour
				seconds:  inst.Simulate(),
				memoryMB: inst.MemoryMB(),
			})
		}
	}

	fmt.Printf("%-12s %-18s %10s %12s\n", "model", "technique", "time (s)", "memory (MB)")
	best := candidates[0]
	for _, c := range candidates {
		fmt.Printf("%-12s %-18s %10.3f %12.1f\n", c.cfg.Model, c.cfg.Technique, c.seconds, c.memoryMB)
		if c.seconds < best.seconds {
			best = c
		}
	}
	fmt.Printf("\nfastest configuration meeting the constraint: %s + %s (%.3f s, %.1f MB)\n",
		best.cfg.Model, best.cfg.Technique, best.seconds, best.memoryMB)
	fmt.Println("— a channel-pruned large network, not the hand-designed small one (paper §V-E).")
}
