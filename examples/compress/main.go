// Compress: apply all three compression techniques to VGG-16 at the
// paper's Table III operating points and compare projected inference
// time and runtime memory on both platforms — a miniature of the
// paper's baseline experiments (Fig. 4 + Table IV).
package main

import (
	"fmt"
	"log"

	dlis "repro"
)

func main() {
	points, err := dlis.TableIII("vgg16")
	if err != nil {
		log.Fatal(err)
	}
	for _, platform := range []string{"odroid-xu4", "intel-i7"} {
		p, err := dlis.PlatformByName(platform)
		if err != nil {
			log.Fatal(err)
		}
		threads := p.CPU.MaxThreads
		fmt.Printf("== VGG-16 on %s (%d threads) ==\n", platform, threads)
		fmt.Printf("%-18s %12s %12s\n", "technique", "time (s)", "memory (MB)")
		for _, tech := range []dlis.Technique{dlis.Plain, dlis.WeightPruned, dlis.ChannelPruned, dlis.Quantised} {
			inst, err := dlis.Instantiate(dlis.StackConfig{
				Model:     "vgg16",
				Technique: tech,
				Point:     points[tech],
				Backend:   dlis.OMP,
				Threads:   threads,
				Platform:  platform,
				Seed:      1,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-18s %12.3f %12.1f\n", tech, inst.Simulate(), inst.MemoryMB())
		}
		fmt.Println()
	}
	fmt.Println("observe: channel pruning wins on both time and memory; the CSR-backed")
	fmt.Println("techniques (weight pruning, quantisation) are slower AND larger than plain.")
}
