// Command dlis-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	dlis-bench                 # run every experiment (fast calibrated mode)
//	dlis-bench -exp fig4       # one experiment
//	dlis-bench -exp fig3a -real  # real mini-model training for Fig. 3
//	dlis-bench -list           # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"

	dlis "repro"
)

func main() {
	exp := flag.String("exp", "", "experiment id (empty = all); see -list")
	real := flag.Bool("real", false, "use real mini-model training for the Fig. 3 accuracy curves (slow)")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	threads := flag.Int("threads", 1, "host threads for real execution phases")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range dlis.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}
	opts := dlis.DefaultExperimentOptions()
	opts.Real = *real
	opts.Seed = *seed
	opts.Threads = *threads

	var err error
	if *exp == "" {
		err = dlis.RunAllExperiments(os.Stdout, opts)
	} else {
		err = dlis.RunExperiment(*exp, os.Stdout, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dlis-bench:", err)
		os.Exit(1)
	}
}
