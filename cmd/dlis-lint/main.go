// Command dlis-lint is the repo-native static analysis suite enforcing
// the serving stack's machine-checked contracts:
//
//	noalloc      //dlis:noalloc functions must not heap-allocate
//	errcontract  sentinels match via errors.Is, wraps preserve %w
//	atomics      atomic struct fields are never accessed plainly
//
// It is a vet tool: `dlis-lint ./...` re-executes the Go command as
// `go vet -vettool=<self> ./...`, so cmd/go does package loading, test
// variants and build caching while this binary checks one type-checked
// unit per invocation (see internal/lint/unitchecker for the
// protocol). Individual analyzers select with -noalloc, -errcontract,
// -atomics; with no selection all run.
//
// Exit status: 0 clean, 1 operational failure, non-zero from go vet
// when diagnostics are reported.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/atomics"
	"repro/internal/lint/errcontract"
	"repro/internal/lint/noalloc"
	"repro/internal/lint/unitchecker"
)

var suite = []*analysis.Analyzer{
	noalloc.Analyzer,
	errcontract.Analyzer,
	atomics.Analyzer,
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("dlis-lint: ")

	versionFlag := flag.String("V", "", "print version and exit (cmd/go tool protocol)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags in JSON (cmd/go tool protocol)")
	enabled := make(map[string]*bool, len(suite))
	for _, a := range suite {
		enabled[a.Name] = flag.Bool(a.Name, false, a.Doc)
	}
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: dlis-lint [-noalloc] [-errcontract] [-atomics] <packages>\n\nAnalyzers (all run when none is selected):\n")
		for _, a := range suite {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *versionFlag != "" {
		printVersion(*versionFlag)
		return
	}
	if *flagsFlag {
		printFlagDefs()
		return
	}

	analyzers := selected(enabled)
	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		// Invoked by cmd/go on one compilation unit.
		os.Exit(unitchecker.Run(args[0], analyzers))
	}
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	os.Exit(reexec(args, enabled))
}

// selected returns the analyzers to run: the explicitly enabled set,
// or all of them when none is selected (the go vet convention).
func selected(enabled map[string]*bool) []*analysis.Analyzer {
	any := false
	for _, on := range enabled {
		any = any || *on
	}
	if !any {
		return suite
	}
	var out []*analysis.Analyzer
	for _, a := range suite {
		if *enabled[a.Name] {
			out = append(out, a)
		}
	}
	return out
}

// reexec drives the full-tree mode through the Go command, which owns
// package loading, test variants and caching:
// `go vet -vettool=<self> <analyzer flags> <patterns>`.
func reexec(patterns []string, enabled map[string]*bool) int {
	self, err := os.Executable()
	if err != nil {
		log.Fatalf("cannot locate own executable (build with 'go build ./cmd/dlis-lint'): %v", err)
	}
	args := []string{"vet", "-vettool=" + self}
	for _, a := range suite {
		if *enabled[a.Name] {
			args = append(args, "-"+a.Name)
		}
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		log.Fatalf("running go vet: %v", err)
	}
	return 0
}

// printVersion implements the -V=full handshake cmd/go uses to key its
// build cache on the tool's identity: the last field must be a content
// ID, so hash the executable.
func printVersion(mode string) {
	if mode != "full" {
		log.Fatalf("unsupported -V value %q", mode)
	}
	self, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(self)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dlis-lint version devel buildID=%x\n", h.Sum(nil))
}

// printFlagDefs implements the -flags handshake: cmd/go asks for the
// tool's flags as JSON so it can accept them on the go vet line.
func printFlagDefs() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	defs := make([]jsonFlag, 0, len(suite))
	for _, a := range suite {
		defs = append(defs, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	out, err := json.Marshal(defs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(out))
}
