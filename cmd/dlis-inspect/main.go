// Command dlis-inspect prints model summaries: per-layer parameters,
// MACs and output shapes, plus the runtime memory footprint in dense and
// CSR formats on demand. With -probe it also serves one inference
// through the batched serving path via the transport-agnostic client
// API and reports the end-to-end result.
//
// Usage:
//
//	dlis-inspect -model vgg16
//	dlis-inspect -model mobilenet -sparsity 0.2346
//	dlis-inspect -model mini-vgg -probe
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	dlis "repro"
	"repro/internal/compress/prune"
	"repro/internal/metrics"
)

func main() {
	model := flag.String("model", "resnet18", "model name (vgg16, resnet18, mobilenet, mini-*)")
	sparsity := flag.Float64("sparsity", 0, "weight-prune to this sparsity before inspecting")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	probe := flag.Bool("probe", false, "serve one inference through the batched serving path and report it")
	flag.Parse()

	net, err := dlis.BuildModel(*model, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dlis-inspect:", err)
		os.Exit(1)
	}
	if *sparsity > 0 {
		prune.NetworkToSparsity(net, *sparsity)
	}
	fmt.Print(net.Summary(1))
	fmt.Printf("\nweight sparsity: %.2f%%\n", net.WeightSparsity()*100)
	fmt.Printf("memory (dense):  %s\n", metrics.Measure(net, 1, metrics.Dense))
	fmt.Printf("memory (csr):    %s\n", metrics.Measure(net, 1, metrics.CSR))

	if *probe {
		if err := serveProbe(*model, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "dlis-inspect:", err)
			os.Exit(1)
		}
	}
}

// serveProbe hosts the model behind a one-replica server and answers a
// single request through the Client API — the same call shape that
// works against a remote dlis-serve -listen process.
func serveProbe(model string, seed uint64) error {
	cfg := dlis.DefaultServerConfig()
	cfg.Stacks = []dlis.ServerStack{{Name: model, Stack: dlis.StackConfig{
		Model: model, Technique: dlis.Plain,
		Backend: dlis.OMP, Threads: 1, Platform: "odroid-xu4", Seed: seed,
	}}}
	srv, err := dlis.NewServer(cfg)
	if err != nil {
		return err
	}
	client := dlis.NewLocalClient(srv)
	defer client.Close()

	ctx := context.Background()
	ms, err := client.Models(ctx)
	if err != nil {
		return err
	}
	shape := ms[0].InputShape // C×H×W
	resp, err := client.InferSync(ctx, dlis.Request{
		Target: model,
		Images: []*dlis.Tensor{dlis.NewImage(1, shape[1], shape[2], seed)},
	})
	if err != nil {
		return err
	}
	r := resp.First()
	fmt.Printf("\nserved probe:    class %d via %s (batch %d, %v end to end, %v compute)\n",
		r.Class, r.Stack, r.BatchSize, r.Latency, r.Compute)
	return nil
}
