// Command dlis-inspect prints model summaries: per-layer parameters,
// MACs and output shapes, plus the runtime memory footprint in dense and
// CSR formats on demand.
//
// Usage:
//
//	dlis-inspect -model vgg16
//	dlis-inspect -model mobilenet -sparsity 0.2346
package main

import (
	"flag"
	"fmt"
	"os"

	dlis "repro"
	"repro/internal/compress/prune"
	"repro/internal/metrics"
)

func main() {
	model := flag.String("model", "resnet18", "model name (vgg16, resnet18, mobilenet, mini-*)")
	sparsity := flag.Float64("sparsity", 0, "weight-prune to this sparsity before inspecting")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	flag.Parse()

	net, err := dlis.BuildModel(*model, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dlis-inspect:", err)
		os.Exit(1)
	}
	if *sparsity > 0 {
		prune.NetworkToSparsity(net, *sparsity)
	}
	fmt.Print(net.Summary(1))
	fmt.Printf("\nweight sparsity: %.2f%%\n", net.WeightSparsity()*100)
	fmt.Printf("memory (dense):  %s\n", metrics.Measure(net, 1, metrics.Dense))
	fmt.Printf("memory (csr):    %s\n", metrics.Measure(net, 1, metrics.CSR))
}
