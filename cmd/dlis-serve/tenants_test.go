package main

import (
	"os"
	"path/filepath"
	"testing"

	dlis "repro"
)

// TestParseTenantMix pins the -tenants grammar: N or N:w1,...,wN, with
// synthetic names t0..tN-1 and positive weights defaulting to 1.
func TestParseTenantMix(t *testing.T) {
	mix, err := parseTenantMix("3")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 3 || mix[0] != (tenantMix{"t0", 1}) || mix[2] != (tenantMix{"t2", 1}) {
		t.Fatalf("parseTenantMix(3) = %+v", mix)
	}
	mix, err = parseTenantMix("2:10,1")
	if err != nil {
		t.Fatal(err)
	}
	if mix[0] != (tenantMix{"t0", 10}) || mix[1] != (tenantMix{"t1", 1}) {
		t.Fatalf("parseTenantMix(2:10,1) = %+v", mix)
	}
	if mix, err := parseTenantMix(""); mix != nil || err != nil {
		t.Fatalf("empty spec = %+v, %v; want nil, nil", mix, err)
	}
	for _, bad := range []string{"0", "-1", "x", "2:10", "2:10,1,1", "2:0,1", "2:10,-1", "2:a,b"} {
		if _, err := parseTenantMix(bad); err == nil {
			t.Errorf("parseTenantMix(%q) accepted, want error", bad)
		}
	}
}

// TestSplitByWeight: proportional integer shares, round-robin
// remainder, and the one-per-tenant floor.
func TestSplitByWeight(t *testing.T) {
	mix := []tenantMix{{"t0", 10}, {"t1", 1}}
	if got := splitByWeight(11, mix); got[0] != 10 || got[1] != 1 {
		t.Fatalf("splitByWeight(11, 10:1) = %v, want [10 1]", got)
	}
	if got := splitByWeight(220, mix); got[0] != 200 || got[1] != 20 {
		t.Fatalf("splitByWeight(220, 10:1) = %v, want [200 20]", got)
	}
	// Remainder lands deterministically, preserving the total.
	if got := splitByWeight(10, []tenantMix{{"t0", 1}, {"t1", 1}, {"t2", 1}}); got[0]+got[1]+got[2] != 10 {
		t.Fatalf("splitByWeight(10, 1:1:1) = %v, want sum 10", got)
	}
	// The floor guarantees participation even when the share rounds to
	// zero — the sum may exceed the total, never strand a tenant.
	if got := splitByWeight(2, []tenantMix{{"t0", 100}, {"t1", 1}}); got[1] != 1 {
		t.Fatalf("splitByWeight(2, 100:1) = %v, want a floor of 1 for t1", got)
	}
}

// TestTenantsFlagBuildsSection: in hosting modes -tenants registers the
// synthetic tenants with their weights; in remote modes it only shapes
// the load loop (a remote role rejects a tenants section outright).
func TestTenantsFlagBuildsSection(t *testing.T) {
	cfg := mustParse(t, "-model", "mini-vgg", "-tenants", "2:10,1")
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	tn := cfg.Tenants
	if tn == nil || len(tn.Defs) != 2 {
		t.Fatalf("hosting -tenants built section %+v, want 2 defs", tn)
	}
	if tn.Defs[0] != (dlis.FleetTenantDef{Name: "t0", Weight: 10}) ||
		tn.Defs[1] != (dlis.FleetTenantDef{Name: "t1", Weight: 1}) {
		t.Fatalf("flag-built defs = %+v", tn.Defs)
	}

	remote := mustParse(t, "-connect", "127.0.0.1:18083", "-model", "mini-vgg/plain", "-tenants", "2:10,1")
	if err := remote.Validate(); err != nil {
		t.Fatal(err)
	}
	if remote.Tenants != nil {
		t.Fatalf("remote -tenants leaked a server section %+v; a load generator enforces no tenancy", remote.Tenants)
	}

	if _, err := parse(t, "-model", "mini-vgg", "-tenants", "2:10"); err == nil {
		t.Fatal("mismatched weight count accepted")
	}
}

// TestTenantsFlagOverridesConfigFile: -tenants over a file rebuilds the
// section wholesale, like -model does the hosted sections.
func TestTenantsFlagOverridesConfigFile(t *testing.T) {
	path := filepath.Join("testdata", "fleet-tenants.json")
	base := mustParse(t, "-config", path)
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	if base.Tenants == nil || base.Tenants.Defs[0].RequestsPerSec != 5 {
		t.Fatalf("file tenants section = %+v", base.Tenants)
	}

	over := mustParse(t, "-config", path, "-tenants", "3")
	if len(over.Tenants.Defs) != 3 || over.Tenants.Defs[0].RequestsPerSec != 0 {
		t.Fatalf("-tenants override kept the file's defs: %+v", over.Tenants)
	}
}

// TestTenantFixtureBootsTheFairnessSmoke validates the committed CI
// fixture through the same pipeline main() runs: a listen-mode backend
// hosting mini-vgg/plain with a quota-capped hot tenant and an
// uncapped background tenant — the determinism the fairness smoke's
// grep assertions lean on.
func TestTenantFixtureBootsTheFairnessSmoke(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "fleet-tenants.json"))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := dlis.ParseFleetConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	r := cfg.Resolve()
	if r.Mode() != dlis.FleetModeListen {
		t.Fatalf("fixture resolves to mode %v, want listen", r.Mode())
	}
	scfg, err := r.ServerConfig()
	if err != nil {
		t.Fatal(err)
	}
	hosted := map[string]bool{}
	for _, s := range scfg.Stacks {
		hosted[s.Key()] = true
	}
	if !hosted["mini-vgg/plain"] {
		t.Fatalf("fixture does not host mini-vgg/plain (stacks %v)", scfg.Stacks)
	}
	hot, ok := scfg.Tenants.Tenants["t0"]
	if !ok || hot.Weight != 10 || hot.RequestsPerSec != 5 {
		t.Fatalf("hot tenant spec = %+v, want weight=10 rps=5 (the smoke asserts quota>0 on it)", hot)
	}
	bg, ok := scfg.Tenants.Tenants["t1"]
	if !ok || bg.Weight != 1 || bg.RequestsPerSec != 0 {
		t.Fatalf("background tenant spec = %+v, want weight=1 and no quota (the smoke asserts its full budget is served)", bg)
	}
	if scfg.Tenants.UsageFile == "" {
		t.Fatal("fixture has no usage file; the smoke asserts the drained backend persisted the ledger")
	}
}
