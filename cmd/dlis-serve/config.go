package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	dlis "repro"
)

// flagValues holds every CLI flag. The flag surface and the fleet
// config describe the same topology: without -config the flags alone
// build a dlis.FleetConfig (flagConfig); with -config the file is
// parsed and only the flags the user explicitly set override it
// (applyFlagOverrides). Either way the result flows through the same
// Validate → Resolve pipeline, so contradictory mode flags are typed
// fleetcfg errors, never a silent precedence.
type flagValues struct {
	configPath string
	dryrun     bool

	models     string
	technique  string
	replicas   int
	batch      int
	delay      time.Duration
	clients    int
	requests   int
	baselineN  int
	threads    int
	auto       bool
	platform   string
	seed       uint64
	memlimitMB int
	variants   string
	slo        string
	queueCap   int
	tenants    string
	listen     string
	muxListen  string
	connect    string
	cluster    string
	pipeline   int
	tunerCache string
}

// defineFlags registers every flag on fs (a parameter so tests can use
// private FlagSets) and returns the value struct they bind to.
func defineFlags(fs *flag.FlagSet) *flagValues {
	v := &flagValues{}
	fs.StringVar(&v.configPath, "config", "", "fleet config file (JSON); explicitly set flags override its values")
	fs.BoolVar(&v.dryrun, "dryrun", false, "validate, print the fully resolved topology and exit without booting anything")
	fs.StringVar(&v.models, "model", "resnet18", "comma-separated models to serve (full-size or mini-*); with -connect/-cluster, the remote routing targets")
	fs.StringVar(&v.technique, "technique", "plain", "compression technique: plain, weight-pruning, channel-pruning, quantisation")
	fs.IntVar(&v.replicas, "replicas", 4, "replica workers per pool")
	fs.IntVar(&v.batch, "batch", 8, "max dynamic batch size")
	fs.DurationVar(&v.delay, "delay", 2*time.Millisecond, "max batching delay for a non-full batch")
	fs.IntVar(&v.clients, "clients", 0, "closed-loop clients per target (default 2*replicas*batch)")
	fs.IntVar(&v.requests, "requests", 0, "requests per target (default 4*replicas*batch, min 64)")
	fs.IntVar(&v.baselineN, "baseline-images", 8, "images for the sequential baseline measurement (in-process mode)")
	fs.IntVar(&v.threads, "threads", 1, "engine threads per worker (stack layer 4)")
	fs.BoolVar(&v.auto, "auto", false, "per-layer algorithm selection: plan compilation times direct/im2col/Winograd/sparse per conv geometry and bakes the winner in")
	fs.StringVar(&v.platform, "platform", "odroid-xu4", "modelled platform of the stack configuration")
	fs.Uint64Var(&v.seed, "seed", 1, "deterministic seed")
	fs.IntVar(&v.memlimitMB, "memlimit-mb", 0, "soft heap limit in MB; 0 sizes it from the replica footprints, -1 disables")
	fs.StringVar(&v.variants, "variants", "", "comma-separated techniques to host as one SLO-routed endpoint per model (e.g. plain,weight-pruning,quantisation); empty serves one pool per model")
	fs.StringVar(&v.slo, "slo", "", "request SLO: acc=<min top-1 %>,lat=<max latency>,prio=<class>, any subset (e.g. acc=90,lat=500ms,prio=1)")
	fs.IntVar(&v.queueCap, "queuecap", 0, "per-pool admission queue capacity (0 = replicas*batch*4); routed traffic beyond it is shed with a RetryAfter hint")
	fs.StringVar(&v.tenants, "tenants", "", "synthetic tenant mix N[:w1,...,wN]: split clients and requests across tenants t0..tN-1 proportionally to weight; hosting modes register the same tenants with matching fair-share weights")
	fs.StringVar(&v.listen, "listen", "", "serve the configured stacks over HTTP on this address (e.g. :8080) instead of running the load generator")
	fs.StringVar(&v.muxListen, "muxlisten", "", "serve the configured stacks over the DLW2 multiplexed session protocol on this address (e.g. :8091); combines with -listen for a dual-protocol server")
	fs.StringVar(&v.connect, "connect", "", "drive a remote dlis server at this address instead of building one in-process; dlw2://host:port pins the mux transport, http://host:port pins HTTP, a bare host:port prefers mux with HTTP fallback")
	fs.StringVar(&v.cluster, "cluster", "", "comma-separated dlis backend addresses (scheme rules as -connect); run the load generator over the fleet through one cluster client")
	fs.IntVar(&v.pipeline, "pipeline", 0, "streaming-session load mode: keep this many requests in flight per target over one pipelined session instead of -clients closed loops")
	fs.StringVar(&v.tunerCache, "tunercache", "", "directory for the persistent algorithm-tuner cache; warm starts load timed per-geometry kernel verdicts instead of re-timing them")
	return v
}

// buildConfig assembles the fleet config this process will boot from:
// the -config file with explicitly set flags layered on top, or — with
// no file — the flags alone. The result is NOT yet validated; the
// caller runs Validate so every rejection (contradictory modes
// included) surfaces as one typed fleetcfg error.
func buildConfig(fs *flag.FlagSet, v *flagValues) (*dlis.FleetConfig, error) {
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if v.configPath == "" {
		return flagConfig(v)
	}
	data, err := os.ReadFile(v.configPath)
	if err != nil {
		return nil, err
	}
	cfg, err := dlis.ParseFleetConfig(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", v.configPath, err)
	}
	if err := applyFlagOverrides(cfg, v, set); err != nil {
		return nil, err
	}
	return cfg, nil
}

// flagConfig builds the whole config from the flag values, defaults
// included — the legacy flag-only interface expressed as a fleet
// config. Every mode flag is written through (listen, connect,
// cluster), so a contradictory combination reaches Validate intact and
// is rejected there with a field path instead of one flag silently
// winning.
func flagConfig(v *flagValues) (*dlis.FleetConfig, error) {
	targets := splitList(v.models)
	if len(targets) == 0 {
		return nil, errors.New("no models given")
	}
	slo, err := parseFleetSLO(v.slo)
	if err != nil {
		return nil, err
	}
	mix, err := parseTenantMix(v.tenants)
	if err != nil {
		return nil, err
	}
	cfg := &dlis.FleetConfig{
		Server: &dlis.FleetServer{Listen: v.listen, MuxListen: v.muxListen, MemLimitMB: v.memlimitMB, Seed: v.seed, TunerCache: v.tunerCache},
		Pool:   poolFromFlags(v),
	}
	if v.cluster != "" {
		cfg.Cluster = &dlis.FleetCluster{Members: splitList(v.cluster)}
	}
	if v.connect != "" || v.cluster != "" {
		// Remote load generation: -model names the remote routing
		// targets; nothing is hosted here, so the mix only shapes the
		// load loop — tenancy is enforced by the remote fleet's config.
		cfg.Load = &dlis.FleetLoad{
			Connect: v.connect, Targets: targets,
			Clients: v.clients, Requests: v.requests, Pipeline: v.pipeline, SLO: slo,
		}
		return cfg, nil
	}
	cfg.Tenants = tenantSection(mix)
	cfg.Models, cfg.Endpoints, err = modelSections(targets, v.technique, v.variants)
	if err != nil {
		return nil, err
	}
	// The engine knobs apply to every hosted model in the flag
	// interface (a per-model split needs a config file).
	for i := range cfg.Models {
		cfg.Models[i].Threads = v.threads
		cfg.Models[i].AutoAlgo = v.auto
		cfg.Models[i].Platform = v.platform
	}
	if v.listen == "" && v.muxListen == "" {
		// Targets stay empty: Resolve derives every hosted routing name,
		// which is exactly the declared model/endpoint list.
		cfg.Load = &dlis.FleetLoad{Clients: v.clients, Requests: v.requests, Pipeline: v.pipeline, SLO: slo}
	}
	return cfg, nil
}

// poolFromFlags lowers the tuning flags to a Pool section. A zero
// -queuecap keeps the derive-from-geometry default (nil); any other
// value — negative included — is passed through for Validate to judge.
func poolFromFlags(v *flagValues) *dlis.FleetPool {
	r, b := v.replicas, v.batch
	p := &dlis.FleetPool{Replicas: &r, Batch: &b, Delay: dlis.FleetDuration(v.delay)}
	if v.queueCap != 0 {
		q := v.queueCap
		p.QueueCap = &q
	}
	return p
}

// modelSections builds the Models (and, with -variants, Endpoints)
// declarations for the hosted targets: one pool per model, or one
// SLO-routed endpoint per model fronting the listed variants.
func modelSections(targets []string, technique, variants string) ([]dlis.FleetModel, []dlis.FleetEndpoint, error) {
	if variants == "" {
		ms := make([]dlis.FleetModel, 0, len(targets))
		for _, m := range targets {
			ms = append(ms, dlis.FleetModel{Kind: m, Technique: technique})
		}
		return ms, nil, nil
	}
	vs := splitList(variants)
	if len(vs) == 0 {
		return nil, nil, errors.New("-variants given but empty")
	}
	var ms []dlis.FleetModel
	var eps []dlis.FleetEndpoint
	for _, m := range targets {
		ms = append(ms, dlis.FleetModel{Name: m, Kind: m})
		eps = append(eps, dlis.FleetEndpoint{Name: m, Model: m, Variants: vs})
	}
	return ms, eps, nil
}

// applyFlagOverrides layers the explicitly set flags (set) over a
// parsed config file. Scalar flags overwrite their field; the
// model/technique/variants trio rebuilds the hosted sections last so
// the rebuild sees the other overrides. Precedence rules:
//
//   - -model in a remote config (cluster/connect) replaces the load
//     targets; in a hosting config it replaces Models and Endpoints
//     wholesale (with -technique/-variants at their flag values) and
//     re-derives the load targets.
//   - -technique alone re-techniques every declared model and clears
//     its pinned operating point (the new technique's Table III elbow
//     applies at Resolve).
//   - -variants without -model is ambiguous against a config file's
//     endpoint structure and is rejected.
func applyFlagOverrides(cfg *dlis.FleetConfig, v *flagValues, set map[string]bool) error {
	ensureServer := func() {
		if cfg.Server == nil {
			cfg.Server = &dlis.FleetServer{}
		}
	}
	ensurePool := func() {
		if cfg.Pool == nil {
			cfg.Pool = &dlis.FleetPool{}
		}
	}
	ensureLoad := func() {
		if cfg.Load == nil {
			cfg.Load = &dlis.FleetLoad{}
		}
	}
	if set["listen"] {
		ensureServer()
		cfg.Server.Listen = v.listen
	}
	if set["muxlisten"] {
		ensureServer()
		cfg.Server.MuxListen = v.muxListen
	}
	if set["seed"] {
		ensureServer()
		cfg.Server.Seed = v.seed
	}
	if set["memlimit-mb"] {
		ensureServer()
		cfg.Server.MemLimitMB = v.memlimitMB
	}
	if set["tunercache"] {
		ensureServer()
		cfg.Server.TunerCache = v.tunerCache
	}
	if set["cluster"] {
		cfg.Cluster = &dlis.FleetCluster{Members: splitList(v.cluster)}
	}
	if set["replicas"] {
		ensurePool()
		r := v.replicas
		cfg.Pool.Replicas = &r
	}
	if set["batch"] {
		ensurePool()
		b := v.batch
		cfg.Pool.Batch = &b
	}
	if set["delay"] {
		ensurePool()
		cfg.Pool.Delay = dlis.FleetDuration(v.delay)
	}
	if set["queuecap"] {
		ensurePool()
		if v.queueCap == 0 {
			cfg.Pool.QueueCap = nil // back to derive-from-geometry
		} else {
			q := v.queueCap
			cfg.Pool.QueueCap = &q
		}
	}
	if set["connect"] {
		ensureLoad()
		cfg.Load.Connect = v.connect
	}
	if set["clients"] {
		ensureLoad()
		cfg.Load.Clients = v.clients
	}
	if set["requests"] {
		ensureLoad()
		cfg.Load.Requests = v.requests
	}
	if set["pipeline"] {
		ensureLoad()
		cfg.Load.Pipeline = v.pipeline
	}
	if set["slo"] {
		slo, err := parseFleetSLO(v.slo)
		if err != nil {
			return err
		}
		ensureLoad()
		cfg.Load.SLO = slo
	}
	if set["tenants"] {
		mix, err := parseTenantMix(v.tenants)
		if err != nil {
			return err
		}
		// Remote roles reject a tenants section outright (Validate), so
		// the mix only rebuilds the hosted section — wholesale, like
		// -model: an explicit empty -tenants clears the file's section.
		if remote := cfg.Cluster != nil || (cfg.Load != nil && cfg.Load.Connect != ""); !remote {
			cfg.Tenants = tenantSection(mix)
		}
	}
	if set["threads"] || set["auto"] || set["platform"] {
		for i := range cfg.Models {
			if set["threads"] {
				cfg.Models[i].Threads = v.threads
			}
			if set["auto"] {
				cfg.Models[i].AutoAlgo = v.auto
			}
			if set["platform"] {
				cfg.Models[i].Platform = v.platform
			}
		}
	}
	if set["technique"] && !set["model"] {
		for i := range cfg.Models {
			cfg.Models[i].Technique = v.technique
			cfg.Models[i].Point = nil
		}
	}
	if set["variants"] && !set["model"] {
		return errors.New("-variants overriding a config file needs -model to name the endpoints it rebuilds")
	}
	if set["model"] {
		targets := splitList(v.models)
		if len(targets) == 0 {
			return errors.New("no models given")
		}
		remote := cfg.Cluster != nil || (cfg.Load != nil && cfg.Load.Connect != "")
		if remote {
			ensureLoad()
			cfg.Load.Targets = targets
			return nil
		}
		ms, eps, err := modelSections(targets, v.technique, v.variants)
		if err != nil {
			return err
		}
		if set["threads"] || set["auto"] || set["platform"] {
			for i := range ms {
				ms[i].Threads = v.threads
				ms[i].AutoAlgo = v.auto
				ms[i].Platform = v.platform
			}
		}
		cfg.Models, cfg.Endpoints = ms, eps
		if cfg.Load != nil {
			cfg.Load.Targets = nil // re-derive from the new sections
		}
	}
	return nil
}

// splitList splits a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseFleetSLO parses "acc=90,lat=500ms,prio=1" (any subset) into the
// fleet-config SLO; an empty spec is nil (no objective).
func parseFleetSLO(s string) (*dlis.FleetSLO, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	slo := &dlis.FleetSLO{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("malformed -slo term %q (want key=value)", part)
		}
		val = strings.TrimSpace(val)
		switch strings.ToLower(strings.TrimSpace(key)) {
		case "acc", "accuracy", "minaccuracy":
			a, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("bad accuracy %q: %w", val, err)
			}
			slo.MinAccuracy = a
		case "lat", "latency", "maxlatency":
			d, err := time.ParseDuration(val)
			if err != nil {
				return nil, fmt.Errorf("bad latency %q: %w", val, err)
			}
			slo.MaxLatency = dlis.FleetDuration(d)
		case "prio", "priority":
			p, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("bad priority %q: %w", val, err)
			}
			slo.Priority = p
		default:
			return nil, fmt.Errorf("unknown -slo key %q (want acc/lat/prio)", key)
		}
	}
	return slo, nil
}
