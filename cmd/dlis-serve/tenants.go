package main

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	dlis "repro"
)

// tenantMix is one synthetic tenant of the -tenants load mix: the
// identity the load generator stamps on its requests, and the weight
// that skews both the offered load and — in hosting modes — the
// server's fair-share configuration.
type tenantMix struct {
	Name   string
	Weight int
}

// parseTenantMix parses -tenants "N" or "N:w1,...,wN" into N synthetic
// tenants t0..tN-1. Without the weight list every tenant weighs 1;
// with it, the list length must match N and every weight must be a
// positive integer. An empty spec is nil: the untenanted (anonymous)
// load mix the generator always ran.
func parseTenantMix(s string) ([]tenantMix, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	spec, weights, hasWeights := strings.Cut(s, ":")
	n, err := strconv.Atoi(strings.TrimSpace(spec))
	if err != nil || n < 1 {
		return nil, fmt.Errorf("malformed -tenants %q: want N or N:w1,...,wN with N ≥ 1", s)
	}
	mix := make([]tenantMix, n)
	for i := range mix {
		mix[i] = tenantMix{Name: "t" + strconv.Itoa(i), Weight: 1}
	}
	if hasWeights {
		ws := splitList(weights)
		if len(ws) != n {
			return nil, fmt.Errorf("-tenants %q: %d weight(s) for %d tenant(s)", s, len(ws), n)
		}
		for i, w := range ws {
			wi, err := strconv.Atoi(w)
			if err != nil || wi < 1 {
				return nil, fmt.Errorf("-tenants %q: weight %q is not a positive integer", s, w)
			}
			mix[i].Weight = wi
		}
	}
	return mix, nil
}

// tenantSection lowers the mix to a fleet-config tenants section, so a
// hosting process configured purely by flags registers the same
// weighted fair shares the load generator is about to skew against.
func tenantSection(mix []tenantMix) *dlis.FleetTenants {
	if len(mix) == 0 {
		return nil
	}
	t := &dlis.FleetTenants{Defs: make([]dlis.FleetTenantDef, len(mix))}
	for i, m := range mix {
		t.Defs[i] = dlis.FleetTenantDef{Name: m.Name, Weight: m.Weight}
	}
	return t
}

// splitByWeight apportions total across the mix proportionally to
// weight: integer shares first, the remainder round-robin, and a floor
// of one each so every tenant participates. The floor can push the sum
// slightly past total for tiny totals — deliberate: a tenant that
// exists sends load.
func splitByWeight(total int, mix []tenantMix) []int {
	sum := 0
	for _, m := range mix {
		sum += m.Weight
	}
	out := make([]int, len(mix))
	used := 0
	for i, m := range mix {
		out[i] = total * m.Weight / sum
		used += out[i]
	}
	for i := 0; used < total; i = (i + 1) % len(out) {
		out[i]++
		used++
	}
	for i := range out {
		if out[i] < 1 {
			out[i] = 1
		}
	}
	return out
}

// tenantLoadStats aggregates one tenant's closed-loop outcomes across
// every target of the run.
type tenantLoadStats struct {
	mix      tenantMix
	clients  int // closed-loop clients per target
	offered  int // request budget summed over all targets
	served   atomic.Int64
	quota    atomic.Int64
	retries  atomic.Int64
	latNanos atomic.Int64 // summed end-to-end latency of served requests
}

// reportTenants prints one greppable line per tenant of the mix; the
// CI fairness smoke asserts on these, and the mean latency makes the
// fair-queueing effect measurable per tenant (a starved tenant shows
// up as a mean far above its service time).
func reportTenants(stats []*tenantLoadStats) {
	fmt.Println()
	for _, ts := range stats {
		mean := time.Duration(0)
		if n := ts.served.Load(); n > 0 {
			mean = time.Duration(ts.latNanos.Load() / n)
		}
		fmt.Printf("tenant %s: weight=%d clients=%d offered=%d served=%d quota=%d overload-retries=%d mean-latency=%v\n",
			ts.mix.Name, ts.mix.Weight, ts.clients, ts.offered,
			ts.served.Load(), ts.quota.Load(), ts.retries.Load(),
			mean.Round(time.Microsecond))
	}
}
