package main

import (
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	dlis "repro"
)

// parse runs the real flag pipeline on args and returns the assembled
// (unvalidated) config, mirroring main() up to Validate.
func parse(t *testing.T, args ...string) (*dlis.FleetConfig, error) {
	t.Helper()
	fs := flag.NewFlagSet("dlis-serve", flag.ContinueOnError)
	v := defineFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("flag parse: %v", err)
	}
	return buildConfig(fs, v)
}

// mustParse is parse for argument sets that must assemble cleanly.
func mustParse(t *testing.T, args ...string) *dlis.FleetConfig {
	t.Helper()
	cfg, err := parse(t, args...)
	if err != nil {
		t.Fatalf("buildConfig(%v): %v", args, err)
	}
	return cfg
}

// TestModeConflictsAreTypedErrors is the regression test for the
// centralised mode resolution: every contradictory flag combination
// must surface as a typed fleetcfg error naming the conflicting field,
// never a silent precedence between -listen/-connect/-cluster.
func TestModeConflictsAreTypedErrors(t *testing.T) {
	tests := []struct {
		name     string
		args     []string
		wantPath string
	}{
		{"listen+connect", []string{"-listen", ":8080", "-connect", "h:1", "-model", "mini-vgg"}, "load.connect"},
		{"listen+cluster", []string{"-listen", ":8080", "-cluster", "h:1", "-model", "mini-vgg"}, "server.listen"},
		{"connect+cluster", []string{"-connect", "h:1", "-cluster", "h:2", "-model", "mini-vgg"}, "load.connect"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cfg := mustParse(t, tc.args...)
			err := cfg.Validate()
			if err == nil {
				t.Fatalf("%v validated despite contradictory modes", tc.args)
			}
			var ferr *dlis.FleetConfigError
			if !errors.As(err, &ferr) {
				t.Fatalf("error %v (%T) is not a typed fleetcfg error", err, err)
			}
			if ferr.Path != tc.wantPath {
				t.Fatalf("error path = %q (%v), want %q", ferr.Path, err, tc.wantPath)
			}
		})
	}
}

// TestFlagModeDerivation pins which process role each flag set
// resolves to through the single Mode() derivation point.
func TestFlagModeDerivation(t *testing.T) {
	tests := []struct {
		args []string
		want dlis.FleetMode
	}{
		{[]string{"-model", "mini-vgg"}, dlis.FleetModeLocal},
		{[]string{"-model", "mini-vgg", "-listen", ":8080"}, dlis.FleetModeListen},
		{[]string{"-model", "mini-vgg", "-muxlisten", ":8091"}, dlis.FleetModeListen},
		{[]string{"-model", "mini-vgg", "-listen", ":8080", "-muxlisten", ":8091"}, dlis.FleetModeListen},
		{[]string{"-model", "mini-vgg/plain", "-connect", "127.0.0.1:8080"}, dlis.FleetModeConnect},
		{[]string{"-model", "mini-vgg/plain", "-connect", "dlw2://127.0.0.1:8091", "-pipeline", "32"}, dlis.FleetModeConnect},
		{[]string{"-model", "mini-vgg/plain", "-cluster", "127.0.0.1:18081,dlw2://127.0.0.1:18091"}, dlis.FleetModeCluster},
	}
	for _, tc := range tests {
		cfg := mustParse(t, tc.args...)
		if err := cfg.Validate(); err != nil {
			t.Errorf("%v: %v", tc.args, err)
			continue
		}
		if got := cfg.Mode(); got != tc.want {
			t.Errorf("%v resolved to mode %v, want %v", tc.args, got, tc.want)
		}
	}
}

// TestFlagConfigLegacyDefaults pins flag/config parity: the bare flag
// interface must resolve to the same topology it always ran — 4
// replicas, batch 8, 2ms window, derived queue cap and load shape.
func TestFlagConfigLegacyDefaults(t *testing.T) {
	cfg := mustParse(t, "-model", "mini-vgg")
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	r := cfg.Resolve()
	if *r.Pool.Replicas != 4 || *r.Pool.Batch != 8 || time.Duration(r.Pool.Delay) != 2*time.Millisecond {
		t.Errorf("resolved tuning %+v, want legacy 4 replicas / batch 8 / 2ms", r.Pool)
	}
	if *r.Pool.QueueCap != 4*8*4 {
		t.Errorf("resolved queue cap = %d, want derived %d", *r.Pool.QueueCap, 4*8*4)
	}
	if r.Load.Clients != 2*4*8 || r.Load.Requests != 4*4*8 {
		t.Errorf("resolved load %+v, want legacy 64 clients / 128 requests", r.Load)
	}
	if len(r.Load.Targets) != 1 || r.Load.Targets[0] != "mini-vgg/plain" {
		t.Errorf("resolved targets = %v, want [mini-vgg/plain]", r.Load.Targets)
	}
}

// TestConfigFileFlagOverrides checks the documented precedence:
// explicitly set flags override the file, unset flags leave it alone.
func TestConfigFileFlagOverrides(t *testing.T) {
	path := filepath.Join("testdata", "fleet-backend-1.json")
	base := mustParse(t, "-config", path)
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := *base.Resolve().Pool.Replicas; got != 2 {
		t.Fatalf("file config replicas = %d, want 2 (flag defaults must not leak over the file)", got)
	}

	over := mustParse(t, "-config", path, "-replicas", "3", "-listen", "127.0.0.1:19090")
	if err := over.Validate(); err != nil {
		t.Fatal(err)
	}
	r := over.Resolve()
	if *r.Pool.Replicas != 3 {
		t.Errorf("overridden replicas = %d, want 3", *r.Pool.Replicas)
	}
	if r.Server.Listen != "127.0.0.1:19090" {
		t.Errorf("overridden listen = %q, want 127.0.0.1:19090", r.Server.Listen)
	}
	if *r.Pool.Batch != 4 {
		t.Errorf("batch = %d, want the file's 4 (unset flag must not override)", *r.Pool.Batch)
	}

	// -model on a cluster config retargets the load, not the hosting.
	cl := mustParse(t, "-config", filepath.Join("testdata", "fleet-cluster.json"), "-model", "other/plain")
	if got := cl.Load.Targets; len(got) != 1 || got[0] != "other/plain" {
		t.Errorf("cluster -model override targets = %v, want [other/plain]", got)
	}
	if len(cl.Models) != 0 {
		t.Errorf("cluster -model override declared models %v; a load generator hosts nothing", cl.Models)
	}

	// -variants without -model over a file is ambiguous and rejected.
	if _, err := parse(t, "-config", path, "-variants", "plain,wp"); err == nil {
		t.Error("-variants without -model over a config file must be rejected")
	}
}

// TestCIFixturesBootTheGauntlet validates the committed CI fixtures
// end-to-end through the same pipeline main() runs: they must parse,
// validate, resolve to the roles the cluster gauntlet wires together,
// and agree on the routing target.
func TestCIFixturesBootTheGauntlet(t *testing.T) {
	load := func(name string) *dlis.FleetConfig {
		data, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := dlis.ParseFleetConfig(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return cfg
	}
	b1 := load("fleet-backend-1.json").Resolve()
	b2 := load("fleet-backend-2.json").Resolve()
	cl := load("fleet-cluster.json").Resolve()

	if b1.Mode() != dlis.FleetModeListen || b2.Mode() != dlis.FleetModeListen {
		t.Fatalf("backends must resolve to listen mode, got %v / %v", b1.Mode(), b2.Mode())
	}
	if cl.Mode() != dlis.FleetModeCluster {
		t.Fatalf("cluster fixture must resolve to cluster mode, got %v", cl.Mode())
	}
	members := map[string]bool{}
	for _, m := range cl.Cluster.Members {
		members[m] = true
	}
	for _, b := range []*dlis.FleetConfig{b1, b2} {
		if !members[b.Server.Listen] {
			t.Errorf("backend %s is not a cluster member (%v)", b.Server.Listen, cl.Cluster.Members)
		}
		scfg, err := b.ServerConfig()
		if err != nil {
			t.Errorf("backend %s: %v", b.Server.Listen, err)
			continue
		}
		hosted := map[string]bool{}
		for _, s := range scfg.Stacks {
			hosted[s.Key()] = true
		}
		for _, target := range cl.Load.Targets {
			if !hosted[target] {
				t.Errorf("backend %s does not host cluster target %q (stacks %v)", b.Server.Listen, target, scfg.Stacks)
			}
		}
	}
	if cl.Load.Requests != 600 {
		t.Errorf("cluster fixture requests = %d; CI asserts served=600", cl.Load.Requests)
	}

	// The mux-smoke fixture: one dual-protocol backend serving the same
	// pool over HTTP and DLW2 on distinct ports, so the smoke job can
	// drive both transports against identical hosting and compare.
	mx := load("fleet-mux-backend.json").Resolve()
	if mx.Mode() != dlis.FleetModeListen {
		t.Fatalf("mux backend must resolve to listen mode, got %v", mx.Mode())
	}
	if mx.Server.Listen == "" || mx.Server.MuxListen == "" {
		t.Fatalf("mux backend must listen on both protocols, got listen=%q muxListen=%q",
			mx.Server.Listen, mx.Server.MuxListen)
	}
	scfg, err := mx.ServerConfig()
	if err != nil {
		t.Fatal(err)
	}
	hosted := map[string]bool{}
	for _, s := range scfg.Stacks {
		hosted[s.Key()] = true
	}
	if !hosted["mini-vgg/plain"] {
		t.Errorf("mux backend does not host mini-vgg/plain (stacks %v); the smoke job targets it", scfg.Stacks)
	}
}

// TestPipelineFlagThreadsThrough pins the streaming-session load knob:
// -pipeline must land in the resolved load section and survive the
// flag-over-file override path.
func TestPipelineFlagThreadsThrough(t *testing.T) {
	cfg := mustParse(t, "-model", "mini-vgg", "-pipeline", "32")
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := cfg.Resolve().Load.Pipeline; got != 32 {
		t.Errorf("resolved pipeline = %d, want 32", got)
	}
	neg := mustParse(t, "-model", "mini-vgg", "-pipeline", "-1")
	if neg.Validate() == nil {
		t.Error("negative -pipeline must be rejected by validation")
	}
}
