// Command dlis-serve runs the batched inference server under a
// closed-loop load generator and reports a throughput/latency table per
// stack configuration, next to the single-instance sequential baseline
// the repository could already measure before the serving subsystem
// existed.
//
// Usage:
//
//	dlis-serve -model resnet18 -replicas 4 -batch 8
//	dlis-serve -model resnet18,mobilenet -technique channel-pruning
//	dlis-serve -model mini-vgg -requests 512 -clients 64
//	dlis-serve -model resnet18 -variants plain,weight-pruning,quantisation \
//	           -slo acc=90,lat=500ms,prio=1
//
// Each comma-separated model gets its own pool (routing key
// "<model>/<technique>"). The load generator runs -clients concurrent
// closed-loop clients per pool — each submits one request, waits for
// its result, and immediately submits the next — until -requests
// requests per pool have completed. The table reports, per pool:
//
//	throughput  completed requests per second through the server
//	p50/p99     end-to-end request latency percentiles
//	occupancy   mean requests per executed batch (>1 ⇒ batching engaged)
//	baseline    sequential single-image req/s on ONE instance (no
//	            batching, no concurrency): the pre-serving repo's ceiling
//	speedup     throughput / baseline
//
// The compression operating point for non-plain techniques is the
// paper's Table III baseline for that model.
//
// With -variants, each model becomes one SLO-routed *endpoint* fronting
// the listed compressed variants (Table III operating points, Pareto
// accuracies). Clients submit against the endpoint name under the -slo
// objective; admission is bounded, so saturated variants shed with a
// RetryAfter hint and clients back off and retry. The report then
// breaks traffic down per variant — served versus shed — instead of
// the baseline/speedup columns.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	dlis "repro"
)

func main() {
	models := flag.String("model", "resnet18", "comma-separated models to serve (full-size or mini-*)")
	technique := flag.String("technique", "plain", "compression technique: plain, weight-pruning, channel-pruning, quantisation")
	replicas := flag.Int("replicas", 4, "replica workers per pool")
	batch := flag.Int("batch", 8, "max dynamic batch size")
	delay := flag.Duration("delay", 2*time.Millisecond, "max batching delay for a non-full batch")
	clients := flag.Int("clients", 0, "closed-loop clients per pool (default 2*replicas*batch)")
	requests := flag.Int("requests", 0, "requests per pool (default 4*replicas*batch, min 64)")
	baselineN := flag.Int("baseline-images", 8, "images for the sequential baseline measurement")
	threads := flag.Int("threads", 1, "engine threads per worker (stack layer 4)")
	auto := flag.Bool("auto", false, "per-layer algorithm selection: plan compilation times direct/im2col/Winograd/sparse per conv geometry and bakes the winner in")
	platform := flag.String("platform", "odroid-xu4", "modelled platform of the stack configuration")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	memlimitMB := flag.Int("memlimit-mb", 0, "soft heap limit in MB; 0 sizes it from the replica footprints, -1 disables")
	variants := flag.String("variants", "", "comma-separated techniques to host as one SLO-routed endpoint per model (e.g. plain,weight-pruning,quantisation); empty serves one pool per model")
	sloSpec := flag.String("slo", "", "request SLO for -variants mode: acc=<min top-1 %>,lat=<max latency>,prio=<class>, any subset (e.g. acc=90,lat=500ms,prio=1)")
	queueCap := flag.Int("queuecap", 0, "per-pool admission queue capacity (0 = replicas*batch*4); routed traffic beyond it is shed with a RetryAfter hint")
	flag.Parse()

	// Two full waves of batches per pool keep the queue deep enough that
	// workers always find a full batch waiting — occupancy stays near
	// -batch instead of sagging at batch boundaries.
	if *clients <= 0 {
		*clients = 2 * *replicas * *batch
	}
	if *requests <= 0 {
		*requests = 4 * *replicas * *batch
		if *requests < 64 {
			*requests = 64
		}
	}
	if *baselineN < 2 {
		fatal(fmt.Errorf("-baseline-images must be ≥ 2 (one before and one after the load run), got %d", *baselineN))
	}

	tech, err := parseTechnique(*technique)
	if err != nil {
		fatal(err)
	}

	var modelList []string
	for _, model := range strings.Split(*models, ",") {
		if model = strings.TrimSpace(model); model != "" {
			modelList = append(modelList, model)
		}
	}
	if len(modelList) == 0 {
		fatal(fmt.Errorf("no models given"))
	}

	srvCfg := dlis.DefaultServerConfig()
	srvCfg.Replicas, srvCfg.MaxBatch, srvCfg.MaxDelay, srvCfg.QueueCap = *replicas, *batch, *delay, *queueCap
	baseCfg := dlis.StackConfig{
		Backend: dlis.OMP, Threads: *threads, Platform: *platform, Seed: *seed,
		AutoAlgo: *auto,
	}

	if *variants != "" {
		techs, err := parseTechniques(*variants)
		if err != nil {
			fatal(err)
		}
		slo, err := parseSLO(*sloSpec)
		if err != nil {
			fatal(err)
		}
		runEndpoints(endpointRun{
			models: modelList, techs: techs, slo: slo,
			cfg: srvCfg, base: baseCfg,
			clients: *clients, requests: *requests,
			seed: *seed, memlimitMB: *memlimitMB,
		})
		return
	}

	var stacks []dlis.ServerStack
	for _, model := range modelList {
		cfg := baseCfg
		cfg.Model, cfg.Technique = model, tech
		if tech != dlis.Plain {
			pts, err := dlis.TableIII(model)
			if err != nil {
				fatal(fmt.Errorf("%s: no Table III operating point: %w", model, err))
			}
			cfg.Point = pts[tech]
		}
		stacks = append(stacks, dlis.ServerStack{Stack: cfg})
	}

	// Sequential baseline: one instance, one image at a time — the only
	// serving shape the repository had before internal/serve. Half the
	// baseline images are timed before the load run and half after, so
	// slow drift in the host's effective speed (shared vCPU) cancels in
	// the reported speedup instead of biasing it either way.
	fmt.Printf("dlis-serve: %d pool(s) × %d replicas, batch ≤ %d (window %v), %d clients, %d requests/pool\n\n",
		len(stacks), *replicas, *batch, *delay, *clients, *requests)
	probes := make(map[string]*baselineProbe, len(stacks))
	for _, spec := range stacks {
		name := spec.Key()
		fmt.Printf("measuring sequential baseline for %s (%d of %d images)...\n", name, *baselineN/2+*baselineN%2, *baselineN)
		probe, err := newBaselineProbe(spec.Stack, *seed)
		if err != nil {
			fatal(err)
		}
		probes[name] = probe
		pre := probe.measure(*baselineN/2 + *baselineN%2)
		fmt.Printf("  %v/image\n", pre.Round(time.Microsecond))
	}

	srvCfg.Stacks = stacks
	fmt.Printf("\nstarting server (%d replica instance(s) per pool)...\n", *replicas)
	srv, err := dlis.NewServer(srvCfg)
	if err != nil {
		fatal(err)
	}
	applyMemLimit(srv, *memlimitMB)

	ctx := context.Background()
	var wg sync.WaitGroup
	var clientErrs atomic.Int64
	start := time.Now()
	for _, name := range srv.Stacks() {
		var budget atomic.Int64
		budget.Store(int64(*requests))
		for c := 0; c < *clients; c++ {
			wg.Add(1)
			go func(name string, c int, budget *atomic.Int64) {
				defer wg.Done()
				hw := probes[name].hw
				img := dlis.NewImage(1, hw[0], hw[1], uint64(c)+*seed)
				for budget.Add(-1) >= 0 {
					if _, err := srv.Infer(ctx, name, img); err != nil {
						clientErrs.Add(1)
						fmt.Fprintf(os.Stderr, "dlis-serve: %s client %d: %v\n", name, c, err)
						return
					}
				}
			}(name, c, &budget)
		}
	}
	wg.Wait()
	wall := time.Since(start)
	srv.Close()
	fmt.Printf("\nload run complete in %v\n", wall.Round(time.Millisecond))

	baseline := make(map[string]float64, len(stacks))
	for _, name := range srv.Stacks() {
		fmt.Printf("measuring sequential baseline for %s (remaining %d images)...\n", name, *baselineN/2)
		probes[name].measure(*baselineN / 2)
		perImage := probes[name].perImage()
		baseline[name] = 1 / perImage.Seconds()
		fmt.Printf("  %v/image → %.2f req/s overall\n", perImage.Round(time.Microsecond), baseline[name])
	}
	fmt.Println()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "stack\treplicas\tbatch\trequests\tthroughput\tp50\tp99\toccupancy\tqueue\tmem/replica\tbaseline\tspeedup")
	for _, name := range srv.Stacks() {
		st, err := srv.Stats(name)
		if err != nil {
			fatal(err)
		}
		base := baseline[name]
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.2f req/s\t%v\t%v\t%.2f\t%d\t%.1f MB\t%.2f req/s\t%.2f×\n",
			name, st.Replicas, *batch, st.Completed, st.Throughput,
			st.Latency.P50.Round(time.Microsecond), st.Latency.P99.Round(time.Microsecond),
			st.MeanBatchOccupancy, st.QueueDepth, st.ReplicaMemoryMB, base, st.Throughput/base)
	}
	tw.Flush()

	if n := clientErrs.Load(); n > 0 {
		fmt.Printf("\nwarning: %d client(s) aborted on error — the table reflects only the requests that actually completed, not the configured -requests\n", n)
	}
	for _, name := range srv.Stacks() {
		st, _ := srv.Stats(name)
		if st.MeanBatchOccupancy <= 1 && *clients > 1 {
			fmt.Printf("\nwarning: %s batch occupancy %.2f ≤ 1 — batching never engaged; raise -clients or -delay\n",
				name, st.MeanBatchOccupancy)
		}
	}
}

// baselineProbe times sequential single-image inference on one
// dedicated instance, accumulating across measurement rounds.
type baselineProbe struct {
	inst  *dlis.Instance
	img   *dlis.Tensor
	hw    [2]int // input height/width of the stack
	total time.Duration
	n     int
}

// newBaselineProbe instantiates the stack and runs one warm-up image.
func newBaselineProbe(cfg dlis.StackConfig, seed uint64) (*baselineProbe, error) {
	inst, err := dlis.Instantiate(cfg)
	if err != nil {
		return nil, err
	}
	shape := inst.Net.InputShape // CHW
	p := &baselineProbe{inst: inst, hw: [2]int{shape[1], shape[2]}}
	p.img = dlis.NewImage(1, p.hw[0], p.hw[1], seed)
	p.inst.Run(p.img) // warm-up
	return p, nil
}

// measure times n more sequential single-image inferences and returns
// this round's per-image mean.
func (p *baselineProbe) measure(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		p.inst.Run(p.img)
	}
	round := time.Since(start)
	p.total += round
	p.n += n
	return round / time.Duration(n)
}

// perImage is the mean over every measured image so far.
func (p *baselineProbe) perImage() time.Duration {
	if p.n == 0 {
		return 0
	}
	return p.total / time.Duration(p.n)
}

// endpointRun bundles the -variants mode parameters.
type endpointRun struct {
	models     []string
	techs      []dlis.Technique
	slo        dlis.SLO
	cfg        dlis.ServerConfig
	base       dlis.StackConfig // Model filled per endpoint
	clients    int
	requests   int
	seed       uint64
	memlimitMB int
}

// runEndpoints serves each model as one SLO-routed endpoint over the
// requested variants, drives the closed-loop load (clients back off on
// ErrServerOverloaded by the RetryAfter hint and retry), and reports
// served-versus-shed traffic per variant.
func runEndpoints(r endpointRun) {
	for _, m := range r.models {
		base := r.base
		base.Model = m
		r.cfg.Endpoints = append(r.cfg.Endpoints, dlis.NewEndpoint(m, base, r.techs...))
	}
	// Mirror the server's own default so the banner states the cap the
	// shed counts below were actually produced under.
	effectiveCap := r.cfg.QueueCap
	if effectiveCap < 1 {
		effectiveCap = r.cfg.Replicas * r.cfg.MaxBatch * 4
	}
	fmt.Printf("dlis-serve: %d endpoint(s) × %d variants × %d replicas, batch ≤ %d (window %v), queue cap %d\n",
		len(r.models), len(r.techs), r.cfg.Replicas, r.cfg.MaxBatch, r.cfg.MaxDelay, effectiveCap)
	fmt.Printf("SLO: min accuracy %.1f%%, max latency %v, priority %d; %d clients, %d requests/endpoint\n\n",
		r.slo.MinAccuracy, r.slo.MaxLatency, r.slo.Priority, r.clients, r.requests)

	fmt.Printf("starting server (%d replica instance(s) per variant pool)...\n", r.cfg.Replicas)
	srv, err := dlis.NewServer(r.cfg)
	if err != nil {
		fatal(err)
	}
	applyMemLimit(srv, r.memlimitMB)

	// Input geometry per endpoint, from the already-instantiated pools.
	shapes := make(map[string][2]int, len(r.models))
	for _, name := range srv.Endpoints() {
		chw, err := srv.InputShape(name)
		if err != nil {
			fatal(err)
		}
		shapes[name] = [2]int{chw[1], chw[2]}
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	var clientErrs atomic.Int64
	start := time.Now()
	for _, name := range srv.Endpoints() {
		var budget atomic.Int64
		budget.Store(int64(r.requests))
		for c := 0; c < r.clients; c++ {
			wg.Add(1)
			go func(name string, c int, budget *atomic.Int64) {
				defer wg.Done()
				hw := shapes[name]
				img := dlis.NewImage(1, hw[0], hw[1], uint64(c)+r.seed)
				for budget.Add(-1) >= 0 {
					for {
						_, err := srv.RouteInfer(ctx, name, img, r.slo)
						if err == nil {
							break
						}
						if errors.Is(err, dlis.ErrServerOverloaded) {
							// Shed: honour the hint (bounded so one slow
							// variant cannot idle the client for seconds).
							retry := time.Millisecond
							var ov *dlis.OverloadedError
							if errors.As(err, &ov) && ov.RetryAfter > retry {
								retry = ov.RetryAfter
							}
							if max := 50 * time.Millisecond; retry > max {
								retry = max
							}
							time.Sleep(retry)
							continue
						}
						clientErrs.Add(1)
						fmt.Fprintf(os.Stderr, "dlis-serve: %s client %d: %v\n", name, c, err)
						return
					}
				}
			}(name, c, &budget)
		}
	}
	wg.Wait()
	wall := time.Since(start)
	srv.Close()
	fmt.Printf("\nload run complete in %v\n\n", wall.Round(time.Millisecond))

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "variant\taccuracy\tmodelled\tserved\tshed\tthroughput\tp50\tp99\toccupancy\tmem/replica")
	for _, name := range srv.Endpoints() {
		st, err := srv.EndpointStats(name)
		if err != nil {
			fatal(err)
		}
		for _, v := range st.Variants {
			acc := "n/a"
			if v.Accuracy > 0 {
				acc = fmt.Sprintf("%.1f%%", v.Accuracy)
			}
			fmt.Fprintf(tw, "%s\t%s\t%.3fs\t%d\t%d\t%.2f req/s\t%v\t%v\t%.2f\t%.1f MB\n",
				v.Name, acc, v.ModelledSeconds, v.Routed, v.Shed,
				v.Pool.Throughput,
				v.Pool.Latency.P50.Round(time.Microsecond), v.Pool.Latency.P99.Round(time.Microsecond),
				v.Pool.MeanBatchOccupancy, v.Pool.ReplicaMemoryMB)
		}
		fmt.Fprintf(tw, "%s TOTAL\t\t\t%d\t%d\t\t\t\t\t\n", st.Endpoint, st.Routed, st.Shed)
	}
	tw.Flush()
	if n := clientErrs.Load(); n > 0 {
		fmt.Printf("\nwarning: %d client(s) aborted on error — served counts reflect only completed requests\n", n)
	}
}

// applyMemLimit caps the heap like a production serving process would:
// the replica weights are permanently live, so without a limit the
// collector lets the heap balloon to several times the live set and
// every activation allocation lands on cold, newly-faulted pages. A
// soft limit keeps activation buffers recycling through warm memory.
func applyMemLimit(srv *dlis.Server, memlimitMB int) {
	if memlimitMB < 0 {
		return
	}
	limit := int64(memlimitMB) << 20
	if limit == 0 {
		var replicaBytes float64
		for _, st := range srv.AllStats() {
			replicaBytes += float64(st.Replicas) * st.ReplicaMemoryMB * 1e6
		}
		limit = 2 * int64(replicaBytes)
		if min := int64(1) << 30; limit < min {
			limit = min
		}
	}
	debug.SetMemoryLimit(limit)
	fmt.Printf("soft heap limit %d MB\n", limit>>20)
}

// parseTechniques parses the -variants list.
func parseTechniques(s string) ([]dlis.Technique, error) {
	var techs []dlis.Technique
	seen := map[dlis.Technique]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		t, err := parseTechnique(part)
		if err != nil {
			return nil, err
		}
		if seen[t] {
			return nil, fmt.Errorf("duplicate variant %q", t)
		}
		seen[t] = true
		techs = append(techs, t)
	}
	if len(techs) == 0 {
		return nil, fmt.Errorf("-variants given but empty")
	}
	return techs, nil
}

// parseSLO parses "acc=90,lat=500ms,prio=1" (any subset, empty ok).
func parseSLO(s string) (dlis.SLO, error) {
	var slo dlis.SLO
	if strings.TrimSpace(s) == "" {
		return slo, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return slo, fmt.Errorf("malformed -slo term %q (want key=value)", part)
		}
		val = strings.TrimSpace(val)
		switch strings.ToLower(strings.TrimSpace(key)) {
		case "acc", "accuracy", "minaccuracy":
			a, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return slo, fmt.Errorf("bad accuracy %q: %w", val, err)
			}
			slo.MinAccuracy = a
		case "lat", "latency", "maxlatency":
			d, err := time.ParseDuration(val)
			if err != nil {
				return slo, fmt.Errorf("bad latency %q: %w", val, err)
			}
			slo.MaxLatency = d
		case "prio", "priority":
			p, err := strconv.Atoi(val)
			if err != nil {
				return slo, fmt.Errorf("bad priority %q: %w", val, err)
			}
			slo.Priority = p
		default:
			return slo, fmt.Errorf("unknown -slo key %q (want acc/lat/prio)", key)
		}
	}
	return slo, nil
}

// parseTechnique maps the CLI spelling to the stack-layer-2 constant.
func parseTechnique(s string) (dlis.Technique, error) {
	switch strings.ToLower(s) {
	case "plain", "none":
		return dlis.Plain, nil
	case "weight-pruning", "weight", "wp":
		return dlis.WeightPruned, nil
	case "channel-pruning", "channel", "cp":
		return dlis.ChannelPruned, nil
	case "quantisation", "quantization", "ttq", "quant":
		return dlis.Quantised, nil
	default:
		return dlis.Plain, fmt.Errorf("unknown technique %q", s)
	}
}

// fatal prints the error and exits non-zero.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlis-serve:", err)
	os.Exit(1)
}
