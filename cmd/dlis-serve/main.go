// Command dlis-serve runs the batched inference server — in process,
// as an HTTP server, or as a remote load generator — and reports a
// throughput/latency table per stack configuration through the
// transport-agnostic dlis.Client API, so the same closed-loop run
// works identically over either transport.
//
// Usage:
//
//	dlis-serve -model resnet18 -replicas 4 -batch 8
//	dlis-serve -model resnet18,mobilenet -technique channel-pruning
//	dlis-serve -model mini-vgg -requests 512 -clients 64
//	dlis-serve -model resnet18 -variants plain,weight-pruning,quantisation \
//	           -slo acc=90,lat=500ms,prio=1
//	dlis-serve -model mini-vgg -listen :8080            # HTTP server mode
//	dlis-serve -model mini-vgg -muxlisten :8091         # DLW2 session server
//	dlis-serve -model mini-vgg -listen :8080 -muxlisten :8091 # both protocols
//	dlis-serve -connect host:8080 -model mini-vgg/plain # remote load gen
//	dlis-serve -connect dlw2://host:8091 -model mini-vgg/plain -pipeline 32
//	dlis-serve -cluster host1:8080,dlw2://host2:8091 -model mini-vgg/plain
//	dlis-serve -config fleet.json                       # declarative topology
//	dlis-serve -config fleet.json -dryrun               # print resolved topology
//	dlis-serve -model mini-vgg -tenants 2:10,1          # skewed multi-tenant mix
//
// With -config the whole topology — models, endpoints, pool tuning,
// server role, cluster membership, load parameters — comes from one
// JSON fleet file (see dlis.ParseFleetConfig and DESIGN.md §10), so a
// multi-process deployment is a set of committed files instead of
// hand-maintained flag strings. Explicitly set flags override the
// file's values; -dryrun validates, prints the fully resolved topology
// and exits without instantiating anything. Whichever way the config
// was assembled, it passes through fleetcfg.Validate, so contradictory
// mode flags (e.g. -listen with -connect) are typed, field-qualified
// errors rather than one flag silently winning.
//
// In the default (in-process) mode each comma-separated model gets its
// own pool (routing key "<model>/<technique>") and the load generator
// drives a LocalClient. With -listen the process only serves: the same
// pools (or -variants endpoints) are exposed over HTTP at /v1/infer,
// /v1/models and /v1/stats until SIGINT/SIGTERM drains them;
// -muxlisten additionally (or instead) serves the DLW2 multiplexed
// session protocol on its own port, and a drain covers both listeners.
// With -connect the process only generates load: -model names the
// remote routing targets (pools or endpoints — discovered via the
// models call, which also supplies the input geometry), and the report
// is built from the remote statistics. The connect string picks the
// transport: dlw2://host:port pins DLW2, http://host:port pins HTTP,
// and a bare host:port probes for DLW2 with HTTP fallback. With
// -cluster the load generator fronts
// a whole fleet of -listen backends through one dlis.Cluster client:
// placement is least-loaded power-of-two-choices over the healthy
// members, a backend dying mid-run fails over to the survivors, and
// the report adds a per-member health/traffic table. Either way the load generator runs
// -clients concurrent closed-loop clients per target — each submits
// one request, waits for its result, and immediately submits the next
// — until -requests requests per target have completed. Overloaded
// responses (HTTP 429 with Retry-After, in-process ErrServerOverloaded
// with the same hint) make the client back off and retry.
//
// With -pipeline N the closed loops are replaced by one streaming
// session per target (and tenant): the generator opens client.Session
// and keeps N requests in flight over the single pipe, re-issuing as
// completions stream back. Over dlw2:// this exercises the multiplexed
// transport the way it is meant to be used — one connection, many
// outstanding ids, out-of-order completion — and a single process can
// saturate a remote backend without hundreds of sockets.
//
// With -tenants N[:w1,...,wN] the same closed loop runs as a skewed
// multi-tenant mix: clients and request budgets split across synthetic
// tenants t0..tN-1 proportionally to weight and every request carries
// its tenant's identity. Hosting modes register the tenants with
// matching fair-share weights, so a 10:1 mix exercises weighted-fair
// admission end to end; against a -connect/-cluster fleet the remote
// config defines the tenancy and the mix only shapes the offered load.
// Quota rejections (HTTP 429 with a quota error code, in-process
// ErrQuotaExceeded) are counted but never retried — the tenant's
// budget is spent on every member alike — and the report adds
// per-tenant served/quota lines plus the server's metered usage table.
//
// The per-pool table reports:
//
//	throughput  completed requests per second through the server
//	p50/p99     end-to-end request latency percentiles
//	occupancy   mean requests per executed batch (>1 ⇒ batching engaged)
//	baseline    sequential single-image req/s on ONE instance (no
//	            batching, no concurrency) — in-process mode only
//	speedup     throughput / baseline — in-process mode only
//
// The compression operating point for non-plain techniques is the
// paper's Table III baseline for that model.
//
// With -variants, each model becomes one SLO-routed *endpoint*
// fronting the listed compressed variants (Table III operating points,
// Pareto accuracies). Clients submit against the endpoint name under
// the -slo objective; admission is bounded, so saturated variants shed
// with a RetryAfter hint. The report then breaks traffic down per
// variant — served versus shed — instead of the baseline/speedup
// columns.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"text/tabwriter"
	"time"

	dlis "repro"
)

func main() {
	fl := defineFlags(flag.CommandLine)
	flag.Parse()

	cfg, err := buildConfig(flag.CommandLine, fl)
	if err != nil {
		fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	rcfg := cfg.Resolve()
	if fl.dryrun {
		fmt.Print(rcfg.Topology())
		return
	}

	gen := loadGen{seed: rcfg.Server.Seed}
	if l := rcfg.Load; l != nil {
		gen.targets, gen.clients, gen.requests = l.Targets, l.Clients, l.Requests
		gen.pipeline = l.Pipeline
		gen.slo = l.SLO.ServeSLO()
	}
	if gen.tenants, err = parseTenantMix(fl.tenants); err != nil {
		fatal(err)
	}

	switch rcfg.Mode() {
	case dlis.FleetModeConnect:
		// Remote mode: no server, no baseline — the wire supplies
		// discovery, geometry and the final statistics. DialBackend
		// picks the transport from the connect string's scheme.
		runRemote(dlis.DialBackend(rcfg.Load.Connect), gen)
		return
	case dlis.FleetModeCluster:
		// Cluster mode: the same load generator, pointed at a fleet of
		// HTTP backends through one cluster client.
		runCluster(rcfg, gen)
		return
	}

	// Local / listen mode: lower the config to the serve.Config that
	// hosts it (per-variant pools at their table operating points).
	// Install the persistent tuner cache first so boot-time plan
	// compilation resolves algorithm verdicts through it.
	var tcache *dlis.TunerCache
	if dir := rcfg.Server.TunerCache; dir != "" {
		tcache, err = dlis.OpenTunerCache(dir)
		if err != nil {
			fatal(err)
		}
		dlis.SetTunerCache(tcache)
		fmt.Printf("tuner cache: %s (%d entries loaded)\n", tcache.Path(), tcache.Loaded())
	}
	saveTuner := func() {
		if tcache == nil {
			return
		}
		if wrote, err := tcache.Save(); err != nil {
			fmt.Fprintln(os.Stderr, "dlis-serve: tuner cache save:", err)
		} else if wrote {
			fmt.Printf("tuner cache: saved %d entries to %s\n", tcache.Len(), tcache.Path())
		}
	}

	srvCfg, err := rcfg.ServerConfig()
	if err != nil {
		fatal(err)
	}
	if n := len(srvCfg.Stacks); n > 0 {
		fmt.Printf("dlis-serve: %d pool(s) × %d replicas, batch ≤ %d (window %v)\n",
			n, srvCfg.Replicas, srvCfg.MaxBatch, srvCfg.MaxDelay)
	}
	if n := len(srvCfg.Endpoints); n > 0 {
		vars := 0
		for _, ep := range srvCfg.Endpoints {
			vars += len(ep.Variants)
		}
		fmt.Printf("dlis-serve: %d endpoint(s) × %d variants × %d replicas, batch ≤ %d (window %v), queue cap %d\n",
			n, vars, srvCfg.Replicas, srvCfg.MaxBatch, srvCfg.MaxDelay, srvCfg.QueueCap)
		fmt.Printf("SLO: min accuracy %.1f%%, max latency %v, priority %d\n",
			gen.slo.MinAccuracy, gen.slo.MaxLatency, gen.slo.Priority)
	}

	// Sequential baseline (in-process load-gen mode, pool stacks only):
	// one instance, one image at a time — the only serving shape the
	// repository had before internal/serve. Half the baseline images
	// are timed before the load run and half after, so slow drift in
	// the host's effective speed (shared vCPU) cancels in the reported
	// speedup instead of biasing it either way.
	var probes map[string]*baselineProbe
	if rcfg.Mode() == dlis.FleetModeLocal && len(srvCfg.Stacks) > 0 {
		if fl.baselineN < 2 {
			fatal(fmt.Errorf("-baseline-images must be ≥ 2 (one before and one after the load run), got %d", fl.baselineN))
		}
		probes = make(map[string]*baselineProbe, len(srvCfg.Stacks))
		for _, spec := range srvCfg.Stacks {
			name := spec.Key()
			fmt.Printf("measuring sequential baseline for %s (%d of %d images)...\n", name, fl.baselineN/2+fl.baselineN%2, fl.baselineN)
			probe, err := newBaselineProbe(spec.Stack, rcfg.Server.Seed)
			if err != nil {
				fatal(err)
			}
			probes[name] = probe
			pre := probe.measure(fl.baselineN/2 + fl.baselineN%2)
			fmt.Printf("  %v/image\n", pre.Round(time.Microsecond))
		}
	}

	fmt.Printf("starting server (%d replica instance(s) per pool)...\n", srvCfg.Replicas)
	bootStart := time.Now()
	srv, err := dlis.NewServer(srvCfg)
	if err != nil {
		fatal(err)
	}
	// Machine-parseable boot cost: the bench tooling diffs cold vs warm
	// tuner-cache starts on this line.
	fmt.Printf("server ready in %d ms\n", time.Since(bootStart).Milliseconds())
	if tcache != nil {
		timed, memo, disk := dlis.TunerCounters()
		fmt.Printf("tuner cache: hits=%d memo=%d timed=%d entries=%d\n", disk, memo, timed, tcache.Len())
		saveTuner()
	}
	applyMemLimit(srv, rcfg.Server.MemLimitMB)

	if rcfg.Mode() == dlis.FleetModeListen {
		serveListen(srv, rcfg.Server.Listen, rcfg.Server.MuxListen)
		saveTuner() // anything tuned for batch shapes seen only under load
		return
	}

	client := dlis.NewLocalClient(srv)
	wall, errCount := runLoad(client, gen)
	srv.Close()
	saveTuner()
	fmt.Printf("\nload run complete in %v\n", wall.Round(time.Millisecond))

	var baseline map[string]float64
	if len(probes) > 0 {
		baseline = make(map[string]float64, len(probes))
		for name, probe := range probes {
			fmt.Printf("measuring sequential baseline for %s (remaining %d images)...\n", name, fl.baselineN/2)
			probe.measure(fl.baselineN / 2)
			perImage := probe.perImage()
			baseline[name] = 1 / perImage.Seconds()
			fmt.Printf("  %v/image → %.2f req/s overall\n", perImage.Round(time.Microsecond), baseline[name])
		}
	}

	st, err := client.Stats(context.Background())
	if err != nil {
		fatal(err)
	}
	report(st, gen, srvCfg.MaxBatch, baseline, errCount)
}

// serveListen exposes the server over HTTP (httpAddr), DLW2 sessions
// (muxAddr), or both, until a termination signal arrives, then drains
// every listener gracefully. At least one address is non-empty — the
// config validator derives listen mode only when one is set.
func serveListen(srv *dlis.Server, httpAddr, muxAddr string) {
	done := make(chan error, 2)
	var hs *http.Server
	if httpAddr != "" {
		hs = &http.Server{Addr: httpAddr, Handler: dlis.NewHTTPHandler(srv, 0)}
		go func() { done <- hs.ListenAndServe() }()
		fmt.Printf("serving HTTP on %s (/v1/infer /v1/models /v1/stats); SIGINT drains\n", httpAddr)
	}
	var ml *dlis.MuxListener
	if muxAddr != "" {
		ml = dlis.NewMuxListener(srv, dlis.MuxListenerConfig{})
		go func() { done <- ml.ListenAndServe(muxAddr) }()
		fmt.Printf("serving DLW2 sessions on %s; SIGINT drains\n", muxAddr)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil {
			fatal(err) // a listener died before any signal
		}
	case s := <-sig:
		fmt.Printf("\n%v: draining...\n", s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if hs != nil {
		_ = hs.Shutdown(ctx) // stop accepting, finish in-flight exchanges
	}
	if ml != nil {
		_ = ml.Shutdown(ctx) // goaway every session, wait for the acks
	}
	srv.Close() // drain accepted requests
	fmt.Println("drained")
}

// runRemote drives a remote server over any Client transport:
// discovery (with a startup grace period so a just-launched -listen
// process can finish instantiating), geometry from the models call,
// the shared load loop, and a report built from the remote statistics.
func runRemote(client dlis.Client, gen loadGen) {
	ctx := context.Background()
	var ms []dlis.ModelInfo
	var err error
	for deadline := time.Now().Add(30 * time.Second); ; {
		if ms, err = client.Models(ctx); err == nil {
			break
		}
		if time.Now().After(deadline) {
			fatal(fmt.Errorf("remote server unreachable: %w", err))
		}
		time.Sleep(250 * time.Millisecond)
	}
	hosted := make(map[string]dlis.ModelInfo, len(ms))
	var names []string
	for _, m := range ms {
		hosted[m.Name] = m
		names = append(names, m.Name)
	}
	for _, t := range gen.targets {
		if _, ok := hosted[t]; !ok {
			fatal(fmt.Errorf("remote server does not host %q (hosted: %v)", t, names))
		}
	}
	shape := fmt.Sprintf("%d clients", gen.clients)
	if gen.pipeline > 0 {
		shape = fmt.Sprintf("pipeline of %d per session", gen.pipeline)
	}
	fmt.Printf("dlis-serve: remote load generator → %d target(s), %s, %d requests/target\n",
		len(gen.targets), shape, gen.requests)
	wall, errCount := runLoad(client, gen)
	fmt.Printf("\nload run complete in %v\n", wall.Round(time.Millisecond))
	st, err := client.Stats(ctx)
	if err != nil {
		fatal(err)
	}
	report(st, gen, 0, nil, errCount)
}

// runCluster drives a fleet of dlis HTTP backends through one cluster
// client: every address becomes a member, discovery waits until the
// fleet advertises every target (backends launched alongside the load
// generator get a grace period), the shared load loop runs against the
// cluster, and the report is the merged fleet statistics plus a
// per-member health/traffic table. A backend dying mid-run is the
// cluster's problem, not the load generator's: its in-flight requests
// fail over and its share of the traffic moves to the survivors.
func runCluster(rcfg *dlis.FleetConfig, gen loadGen) {
	var members []dlis.ClusterMember
	for _, a := range rcfg.Cluster.Members {
		// DialBackend honours each member's scheme prefix: dlw2:// pins
		// the mux transport, http:// pins HTTP, bare addresses probe.
		members = append(members, dlis.ClusterMember{Name: a, Client: dlis.DialBackend(a)})
	}
	cl, err := dlis.NewClusterWithConfig(rcfg.ClusterConfig(), members...)
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()
	for deadline := time.Now().Add(30 * time.Second); ; {
		ms, err := cl.Models(ctx)
		hosted := make(map[string]bool, len(ms))
		for _, m := range ms {
			hosted[m.Name] = true
		}
		missing := ""
		for _, t := range gen.targets {
			if !hosted[t] {
				missing = t
				break
			}
		}
		if err == nil && missing == "" {
			break
		}
		if time.Now().After(deadline) {
			if err == nil {
				err = fmt.Errorf("fleet does not host %q", missing)
			}
			fatal(fmt.Errorf("cluster discovery: %w", err))
		}
		time.Sleep(250 * time.Millisecond)
	}
	fmt.Printf("dlis-serve: cluster load generator → %d member(s), %d target(s), %d clients, %d requests/target\n",
		len(members), len(gen.targets), gen.clients, gen.requests)
	wall, errCount := runLoad(cl, gen)
	fmt.Printf("\nload run complete in %v\n", wall.Round(time.Millisecond))
	st, err := cl.Stats(ctx)
	if err != nil {
		fatal(err)
	}
	report(st, gen, 0, nil, errCount)
	reportMembers(cl.Snapshot())
	if err := cl.Close(); err != nil {
		fatal(err)
	}
}

// reportMembers renders the per-member cluster table: health, the
// traffic the placement put on each member, and the failure accounting
// (shed = typed overload refusals, failed = transport failures that
// failed over, ejections = healthy→ejected transitions).
func reportMembers(snap dlis.ClusterStats) {
	fmt.Println()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "member\thealthy\tserved\tshed\tfailed\tejections\ttargets")
	for _, m := range snap.Members {
		fmt.Fprintf(tw, "%s\t%v\t%d\t%d\t%d\t%d\t%s\n",
			m.Member, m.Healthy, m.Served, m.Shed, m.Failed, m.Ejections, strings.Join(m.Targets, ","))
	}
	tw.Flush()
	fmt.Printf("cluster totals: served=%d shed=%d overload-retries=%d failovers=%d\n",
		snap.Served, snap.Shed, snap.OverloadRetries, snap.Failovers)
}

// loadGen bundles the closed-loop load parameters shared by every
// transport.
type loadGen struct {
	targets  []string
	slo      dlis.SLO
	clients  int
	requests int
	pipeline int // >0: streaming sessions with this many requests in flight
	seed     uint64
	tenants  []tenantMix
}

// runLoad drives the closed loop through the transport-agnostic
// Client: per target, gen.clients concurrent clients each submit one
// request, wait, and submit the next until the target's budget is
// spent. With a -tenants mix the clients and budgets are split across
// the tenants proportionally to weight, and every request carries its
// tenant's identity. Overload rejections back off by the server's
// RetryAfter hint (bounded so one slow variant cannot idle a client
// for seconds) and retry; quota rejections consume the request without
// a retry — the tenant's budget is spent fleet-wide, so there is
// nothing to retry against; other errors abort that client.
//
// With gen.pipeline > 0 the closed loops are replaced by one streaming
// session per target and tenant that keeps gen.pipeline requests in
// flight (see pipelineTarget); the error semantics are identical.
func runLoad(client dlis.Client, gen loadGen) (time.Duration, int64) {
	ctx := context.Background()
	shapes := make(map[string][2]int, len(gen.targets))
	ms, err := client.Models(ctx)
	if err != nil {
		fatal(err)
	}
	for _, m := range ms {
		if len(m.InputShape) == 3 {
			shapes[m.Name] = [2]int{m.InputShape[1], m.InputShape[2]}
		}
	}
	for _, t := range gen.targets {
		if _, ok := shapes[t]; !ok {
			fatal(fmt.Errorf("no input geometry for target %q", t))
		}
	}

	// Without -tenants the mix is one anonymous tenant — the identical
	// load shape the generator always ran.
	mix := gen.tenants
	if len(mix) == 0 {
		mix = []tenantMix{{Weight: 1}}
	}
	clientSplit := splitByWeight(gen.clients, mix)
	reqSplit := splitByWeight(gen.requests, mix)
	stats := make([]*tenantLoadStats, len(mix))
	for i, m := range mix {
		stats[i] = &tenantLoadStats{mix: m, clients: clientSplit[i], offered: reqSplit[i] * len(gen.targets)}
	}

	var wg sync.WaitGroup
	var clientErrs atomic.Int64
	start := time.Now()
	for _, name := range gen.targets {
		for ti := range mix {
			if gen.pipeline > 0 {
				ts, budget := stats[ti], reqSplit[ti]
				wg.Add(1)
				go func(name string) {
					defer wg.Done()
					pipelineTarget(ctx, client, gen, name, shapes[name], ts, budget, &clientErrs)
				}(name)
				continue
			}
			budget := new(atomic.Int64)
			budget.Store(int64(reqSplit[ti]))
			ts := stats[ti]
			for c := 0; c < clientSplit[ti]; c++ {
				wg.Add(1)
				go func(name string, c int, ts *tenantLoadStats, budget *atomic.Int64) {
					defer wg.Done()
					hw := shapes[name]
					img := dlis.NewImage(1, hw[0], hw[1], uint64(c)+gen.seed)
					req := dlis.Request{Target: name, Tenant: ts.mix.Name, Images: []*dlis.Tensor{img}, SLO: gen.slo}
					for budget.Add(-1) >= 0 {
						sent := time.Now()
						for {
							_, err := client.InferSync(ctx, req)
							if err == nil {
								ts.served.Add(1)
								ts.latNanos.Add(int64(time.Since(sent)))
								break
							}
							if errors.Is(err, dlis.ErrQuotaExceeded) {
								// The tenant's own budget is spent — on every
								// member, so unlike overload a retry cannot
								// land anywhere better. Count it, consume the
								// request, move on.
								ts.quota.Add(1)
								break
							}
							if errors.Is(err, dlis.ErrServerOverloaded) {
								// Shed: honour the hint from either transport
								// (HTTP carries it as 429 + Retry-After).
								ts.retries.Add(1)
								retry := time.Millisecond
								var ov *dlis.OverloadedError
								if errors.As(err, &ov) && ov.RetryAfter > retry {
									retry = ov.RetryAfter
								}
								if max := 50 * time.Millisecond; retry > max {
									retry = max
								}
								time.Sleep(retry)
								continue
							}
							clientErrs.Add(1)
							fmt.Fprintf(os.Stderr, "dlis-serve: %s client %d: %v\n", name, c, err)
							return
						}
					}
				}(name, c, ts, budget)
			}
		}
	}
	wg.Wait()
	wall := time.Since(start)
	// Client-side accounting line, machine-parseable: the smoke scripts
	// compare transports by this run's own served count and throughput,
	// which — unlike the server's statistics — does not accumulate
	// across successive runs against the same backend.
	var served, quota int64
	for _, ts := range stats {
		served += ts.served.Load()
		quota += ts.quota.Load()
	}
	mode := fmt.Sprintf("clients=%d", gen.clients)
	if gen.pipeline > 0 {
		mode = fmt.Sprintf("pipeline=%d", gen.pipeline)
	}
	fmt.Printf("client loop (%s): served=%d quota=%d wall=%v throughput=%.2f req/s\n",
		mode, served, quota, wall.Round(time.Millisecond), float64(served)/wall.Seconds())
	if len(gen.tenants) > 0 {
		reportTenants(stats)
	}
	return wall, clientErrs.Load()
}

// pipelineTarget keeps gen.pipeline requests in flight over one
// streaming session until budget requests have been consumed. The
// per-request error semantics mirror the closed loop: an overload shed
// honours the (bounded) RetryAfter hint and re-issues, a quota
// rejection consumes the request without a retry, any other failure —
// including a send or receive error on the session itself — abandons
// the remaining budget and counts as a client error.
func pipelineTarget(ctx context.Context, client dlis.Client, gen loadGen, name string, hw [2]int, ts *tenantLoadStats, budget int, clientErrs *atomic.Int64) {
	if budget <= 0 {
		return
	}
	sess, err := client.Session(ctx)
	if err != nil {
		clientErrs.Add(1)
		fmt.Fprintf(os.Stderr, "dlis-serve: %s session: %v\n", name, err)
		return
	}
	defer sess.Close()
	img := dlis.NewImage(1, hw[0], hw[1], gen.seed)
	req := dlis.Request{Target: name, Tenant: ts.mix.Name, Images: []*dlis.Tensor{img}, SLO: gen.slo}
	inflight := make(map[uint64]time.Time, gen.pipeline)
	completed := 0
	for completed < budget {
		// Top up the window: every unit of budget not yet consumed and
		// not already on the wire gets (re-)issued.
		for len(inflight) < gen.pipeline && completed+len(inflight) < budget {
			id, err := sess.Send(req)
			if err != nil {
				clientErrs.Add(1)
				fmt.Fprintf(os.Stderr, "dlis-serve: %s pipeline send: %v\n", name, err)
				return
			}
			inflight[id] = time.Now()
		}
		res, err := sess.Recv()
		if err != nil {
			clientErrs.Add(1)
			fmt.Fprintf(os.Stderr, "dlis-serve: %s pipeline recv: %v\n", name, err)
			return
		}
		sent := inflight[res.ID]
		delete(inflight, res.ID)
		switch {
		case res.Err == nil:
			ts.served.Add(1)
			ts.latNanos.Add(int64(time.Since(sent)))
			completed++
		case errors.Is(res.Err, dlis.ErrQuotaExceeded):
			ts.quota.Add(1)
			completed++
		case errors.Is(res.Err, dlis.ErrServerOverloaded):
			// Shed: the unit returns to the to-issue pool and the top-up
			// loop re-sends it on the next pass, after the hint.
			ts.retries.Add(1)
			retry := time.Millisecond
			var ov *dlis.OverloadedError
			if errors.As(res.Err, &ov) && ov.RetryAfter > retry {
				retry = ov.RetryAfter
			}
			if max := 50 * time.Millisecond; retry > max {
				retry = max
			}
			time.Sleep(retry)
		default:
			clientErrs.Add(1)
			fmt.Fprintf(os.Stderr, "dlis-serve: %s pipeline: %v\n", name, res.Err)
			return
		}
	}
}

// report renders the final table from a ServerStats snapshot — the
// same structure whichever transport produced it. Targets that are
// endpoints get the per-variant served/shed table; pool targets get
// the throughput table, with baseline/speedup columns when the
// sequential baseline was measured (in-process mode).
func report(st dlis.ServerStats, gen loadGen, batch int, baseline map[string]float64, errCount int64) {
	fmt.Println()
	var pools, endpoints []string
	for _, t := range gen.targets {
		if _, ok := st.Endpoints[t]; ok {
			endpoints = append(endpoints, t)
		} else {
			pools = append(pools, t)
		}
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	if len(pools) > 0 {
		hdr := "stack\treplicas\tbatch\trequests\tthroughput\tp50\tp99\toccupancy\tqueue\tmem/replica"
		if baseline != nil {
			hdr += "\tbaseline\tspeedup"
		}
		fmt.Fprintln(tw, hdr)
		for _, name := range pools {
			ps, ok := st.Pools[name]
			if !ok {
				fatal(fmt.Errorf("no statistics for %q", name))
			}
			// The batch column is the load generator's own -batch; a
			// remote server's setting is not on the wire, so show "-".
			batchCol := "-"
			if batch > 0 {
				batchCol = strconv.Itoa(batch)
			}
			fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%.2f req/s\t%v\t%v\t%.2f\t%d\t%.1f MB",
				name, ps.Replicas, batchCol, ps.Completed, ps.Throughput,
				ps.Latency.P50.Round(time.Microsecond), ps.Latency.P99.Round(time.Microsecond),
				ps.MeanBatchOccupancy, ps.QueueDepth, ps.ReplicaMemoryMB)
			if baseline != nil {
				base := baseline[name]
				fmt.Fprintf(tw, "\t%.2f req/s\t%.2f×", base, ps.Throughput/base)
			}
			fmt.Fprintln(tw)
		}
	}
	if len(endpoints) > 0 {
		fmt.Fprintln(tw, "variant\taccuracy\tmodelled\tmeasured\tserved\tshed\tthroughput\tp50\tp99\toccupancy\tmem/replica")
		for _, name := range endpoints {
			es := st.Endpoints[name]
			for _, v := range es.Variants {
				acc := "n/a"
				if v.Accuracy > 0 {
					acc = fmt.Sprintf("%.1f%%", v.Accuracy)
				}
				// measured is this host's warmed batch-1 plan time — the
				// router's actual rank; modelled is the paper platform.
				measured := "n/a"
				if v.MeasuredSeconds > 0 {
					measured = fmt.Sprintf("%.2fms", v.MeasuredSeconds*1000)
				}
				fmt.Fprintf(tw, "%s\t%s\t%.3fs\t%s\t%d\t%d\t%.2f req/s\t%v\t%v\t%.2f\t%.1f MB\n",
					v.Name, acc, v.ModelledSeconds, measured, v.Routed, v.Shed,
					v.Pool.Throughput,
					v.Pool.Latency.P50.Round(time.Microsecond), v.Pool.Latency.P99.Round(time.Microsecond),
					v.Pool.MeanBatchOccupancy, v.Pool.ReplicaMemoryMB)
			}
			fmt.Fprintf(tw, "%s TOTAL\t\t\t\t%d\t%d\t\t\t\t\t\n", es.Endpoint, es.Routed, es.Shed)
		}
	}
	// The usage table appears only when named tenants exist: a legacy
	// untenanted run metering everything under the anonymous default
	// keeps its pre-tenant report.
	_, anon := st.Tenants[""]
	if len(st.Tenants) > 0 && !(anon && len(st.Tenants) == 1) {
		names := make([]string, 0, len(st.Tenants))
		for name := range st.Tenants {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintln(tw, "tenant\tweight\trequests\timages\tshed\tquota\tmodel-seconds")
		for _, name := range names {
			u := st.Tenants[name]
			label := name
			if label == "" {
				label = "(anonymous)"
			}
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%.3fs\n",
				label, u.Weight, u.Requests, u.Images, u.Shed, u.QuotaRejected, u.ModelSeconds)
		}
	}
	tw.Flush()

	if errCount > 0 {
		fmt.Printf("\nwarning: %d client(s) aborted on error — the table reflects only the requests that actually completed, not the configured -requests\n", errCount)
	}
	// A single closed-loop client can never coalesce, so only warn when
	// batching had a chance to engage.
	for _, name := range pools {
		if ps := st.Pools[name]; ps.MeanBatchOccupancy <= 1 && gen.clients > 1 {
			fmt.Printf("\nwarning: %s batch occupancy %.2f ≤ 1 — batching never engaged; raise -clients or -delay\n",
				name, ps.MeanBatchOccupancy)
		}
	}
}

// baselineProbe times sequential single-image inference on one
// dedicated instance, accumulating across measurement rounds.
type baselineProbe struct {
	inst  *dlis.Instance
	img   *dlis.Tensor
	hw    [2]int // input height/width of the stack
	total time.Duration
	n     int
}

// newBaselineProbe instantiates the stack and runs one warm-up image.
func newBaselineProbe(cfg dlis.StackConfig, seed uint64) (*baselineProbe, error) {
	inst, err := dlis.Instantiate(cfg)
	if err != nil {
		return nil, err
	}
	shape := inst.Net.InputShape // CHW
	p := &baselineProbe{inst: inst, hw: [2]int{shape[1], shape[2]}}
	p.img = dlis.NewImage(1, p.hw[0], p.hw[1], seed)
	p.inst.Run(p.img) // warm-up
	return p, nil
}

// measure times n more sequential single-image inferences and returns
// this round's per-image mean.
func (p *baselineProbe) measure(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		p.inst.Run(p.img)
	}
	round := time.Since(start)
	p.total += round
	p.n += n
	return round / time.Duration(n)
}

// perImage is the mean over every measured image so far.
func (p *baselineProbe) perImage() time.Duration {
	if p.n == 0 {
		return 0
	}
	return p.total / time.Duration(p.n)
}

// applyMemLimit caps the heap like a production serving process would:
// the replica weights are permanently live, so without a limit the
// collector lets the heap balloon to several times the live set and
// every activation allocation lands on cold, newly-faulted pages. A
// soft limit keeps activation buffers recycling through warm memory.
func applyMemLimit(srv *dlis.Server, memlimitMB int) {
	if memlimitMB < 0 {
		return
	}
	limit := int64(memlimitMB) << 20
	if limit == 0 {
		var replicaBytes float64
		for _, st := range srv.AllStats() {
			replicaBytes += float64(st.Replicas) * st.ReplicaMemoryMB * 1e6
		}
		limit = 2 * int64(replicaBytes)
		if min := int64(1) << 30; limit < min {
			limit = min
		}
	}
	debug.SetMemoryLimit(limit)
	fmt.Printf("soft heap limit %d MB\n", limit>>20)
}

// fatal prints the error and exits non-zero.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlis-serve:", err)
	os.Exit(1)
}
