// Command dlis-train trains a mini model on the synthetic CIFAR dataset
// and optionally applies one of the three compression techniques with
// fine-tuning, printing the accuracy trajectory — a command-line version
// of the Fig. 3 machinery.
//
// Usage:
//
//	dlis-train -model mini-vgg -epochs 4
//	dlis-train -model mini-vgg -technique weight-pruning -level 0.7
//	dlis-train -model mini-resnet -technique channel-pruning -level 0.3
//	dlis-train -model mini-vgg -technique quantisation -level 0.1
package main

import (
	"flag"
	"fmt"
	"os"

	dlis "repro"
	"repro/internal/compress/channel"
	"repro/internal/compress/prune"
	"repro/internal/compress/quant"
	"repro/internal/train"
)

func main() {
	model := flag.String("model", "mini-vgg", "model (mini-vgg, mini-resnet, mini-mobilenet)")
	technique := flag.String("technique", "", "compression after training: weight-pruning | channel-pruning | quantisation")
	level := flag.Float64("level", 0.5, "sparsity / compression rate / TTQ threshold")
	epochs := flag.Int("epochs", 4, "training epochs")
	trainN := flag.Int("train", 600, "training set size")
	testN := flag.Int("test", 200, "test set size")
	seed := flag.Uint64("seed", 1, "deterministic seed")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "dlis-train:", err)
		os.Exit(1)
	}

	net, err := dlis.BuildModel(*model, *seed)
	if err != nil {
		fail(err)
	}
	trainSet, testSet := dlis.SyntheticCIFAR(*trainN, *testN, *seed|3)

	cfg := dlis.DefaultTrainConfig()
	cfg.Epochs = *epochs
	cfg.Verbose = true
	cfg.Seed = *seed | 5
	fmt.Printf("training %s on %d synthetic images...\n", *model, trainSet.Len())
	res := dlis.Train(net, trainSet, testSet, cfg)
	fmt.Printf("baseline: train %.1f%%  test %.1f%%  loss %.3f\n",
		res.TrainAccuracy*100, res.TestAccuracy*100, res.FinalLoss)

	ft := train.Config{Epochs: 1, BatchSize: 32, Schedule: train.Schedule{Base: 0.005}, Seed: *seed | 7}
	switch *technique {
	case "":
		return
	case "weight-pruning":
		prune.NetworkToSparsity(net, *level)
		r := dlis.Train(net, trainSet, testSet, ft)
		fmt.Printf("weight-pruned to %.1f%% sparsity: test %.1f%%\n",
			net.WeightSparsity()*100, r.TestAccuracy*100)
	case "channel-pruning":
		cfgCP := channel.DefaultConfig()
		cfgCP.FineTune = ft
		cfgCP.Remove = int(*level * 20)
		r := channel.Prune(net, trainSet, testSet, cfgCP)
		fmt.Printf("channel-pruned %d channels (%.1f%% of conv params): test %.1f%%\n",
			r.Removed, r.CompressionRate*100, r.Accuracy*100)
	case "quantisation":
		st := quant.Quantize(net, *level)
		r := st.FineTune(net, trainSet, testSet, ft)
		fmt.Printf("quantised at threshold %.2f (%.1f%% sparsity): test %.1f%%\n",
			*level, st.Sparsity()*100, r.TestAccuracy*100)
	default:
		fail(fmt.Errorf("unknown technique %q", *technique))
	}
}
