#!/usr/bin/env bash
# DLW2 mux smoke: the multiplexed session transport end to end.
#
# Boots one dual-protocol backend from the committed fleet-mux-backend
# fixture (HTTP on 18090, DLW2 sessions on 18091 — same pools), then
# drives the identical 600-request load over each transport: a
# closed-loop HTTP run and a single pipelined DLW2 session keeping a
# 32-request window in flight. Asserts that both transports serve the
# full budget with no hard client failures, that the pipelined DLW2 run
# is at least as fast as the HTTP run on the same host in the same
# minute (the protocol's acceptance floor: one multiplexed connection
# must beat per-request HTTP), and that the backend drains both
# listeners gracefully on SIGTERM. Also re-asserts the frame codec's
# zero-allocation contract next to the wire run that depends on it.
set -euo pipefail
cd "$(dirname "$0")/.."
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

echo "== frame codec 0-alloc gate =="
go test ./internal/serve/muxwire/ -run 'TestFrameCodecZeroAlloc' -v | grep -E 'PASS|ok'

echo "== boot the dual-protocol backend =="
go build -o "$work/dlis-serve" ./cmd/dlis-serve
# The fixture must validate and resolve before anything boots.
"$work/dlis-serve" -config cmd/dlis-serve/testdata/fleet-mux-backend.json -dryrun
"$work/dlis-serve" -config cmd/dlis-serve/testdata/fleet-mux-backend.json > "$work/backend.log" 2>&1 &
SRV=$!

echo "== closed-loop load over HTTP =="
"$work/dlis-serve" -connect http://127.0.0.1:18090 -model mini-vgg/plain \
  -clients 16 -requests 600 | tee "$work/http.log"
grep -Eq 'client loop \(clients=16\): served=600 ' "$work/http.log"
if grep -q 'client(s) aborted on error' "$work/http.log"; then
  echo "HTTP load-generator clients saw hard failures"; exit 1
fi

echo "== pipelined session load over dlw2:// =="
"$work/dlis-serve" -connect dlw2://127.0.0.1:18091 -model mini-vgg/plain \
  -requests 600 -pipeline 32 | tee "$work/mux.log"
grep -Eq 'client loop \(pipeline=32\): served=600 ' "$work/mux.log"
if grep -q 'client(s) aborted on error' "$work/mux.log"; then
  echo "DLW2 load-generator clients saw hard failures"; exit 1
fi

echo "== throughput: one DLW2 session must be >= 16 HTTP closed loops =="
http_tp=$(sed -En 's/.*throughput=([0-9.]+) req\/s.*/\1/p' "$work/http.log" | head -1)
mux_tp=$(sed -En 's/.*throughput=([0-9.]+) req\/s.*/\1/p' "$work/mux.log" | head -1)
echo "http=$http_tp req/s  dlw2=$mux_tp req/s"
awk -v m="$mux_tp" -v h="$http_tp" 'BEGIN { exit !(m >= h) }' || {
  echo "pipelined DLW2 ($mux_tp req/s) slower than HTTP ($http_tp req/s)"; exit 1
}

echo "== graceful drain of both listeners =="
kill -TERM $SRV
wait $SRV || true
cat "$work/backend.log"
grep -q 'serving HTTP on 127.0.0.1:18090' "$work/backend.log"
grep -q 'serving DLW2 sessions on 127.0.0.1:18091' "$work/backend.log"
grep -q 'drained' "$work/backend.log"
echo "mux smoke OK"
