#!/usr/bin/env bash
# Benchmark smoke: the CI bench gate plus a machine-readable summary.
#
# Runs the two serving-path benchmarks, enforces the compiled-plan
# 0-alloc gate (the quantised int8 rows included), times a cold vs warm
# tuner-cache server start against the same cache directory, and writes
# the results to BENCH_7.json (override the path with $1). Wall-clock
# numbers are recorded, not asserted — CI hosts are too noisy to gate
# on timing; the structural assertions (allocations, cache hit/timed
# counters) are the gate.
set -euo pipefail
cd "$(dirname "$0")/.."
out=${1:-BENCH_7.json}
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

echo "== plan bench (0 allocs/op gate, int8 rows included) =="
go test -run '^$' -bench 'BenchmarkPlanInference$' -benchtime 1x -benchmem . | tee "$work/plan-bench.out"
bad=$(awk '/\/plan\/.*allocs\/op/ && $(NF-1) != 0 {print}' "$work/plan-bench.out")
if [ -n "$bad" ]; then
  echo "compiled-plan rows allocate:"; echo "$bad"; exit 1
fi
grep -q '/plan/batch=' "$work/plan-bench.out"      # the gate saw the f32 rows
grep -q '/plan/int8/batch=' "$work/plan-bench.out" # ...and the quantised rows

echo "== serve bench =="
go test -run '^$' -bench 'BenchmarkServeThroughput$' -benchtime 1x -benchmem . | tee "$work/serve-bench.out"

echo "== tuner cache cold vs warm start =="
go build -o "$work/dlis-serve" ./cmd/dlis-serve
tc="$work/tunercache"
run_flags=(-model mini-vgg -auto -replicas 1 -batch 4 -clients 4 -requests 32 -tunercache "$tc")
"$work/dlis-serve" "${run_flags[@]}" | tee "$work/cold.log"
# Cold start must have timed candidates and persisted the verdicts.
grep -Eq 'tuner cache: hits=0 memo=[0-9]+ timed=[1-9][0-9]*' "$work/cold.log"
grep -q 'tuner cache: saved' "$work/cold.log"
"$work/dlis-serve" "${run_flags[@]}" | tee "$work/warm.log"
# Warm start resolves every verdict from disk: nothing re-timed, and a
# clean cache is not rewritten.
grep -Eq 'tuner cache: hits=[1-9][0-9]* memo=[0-9]+ timed=0' "$work/warm.log"
if grep -q 'tuner cache: saved' "$work/warm.log"; then
  echo "warm start rewrote a clean cache"; exit 1
fi
# The resolved topology must not depend on the cache state.
"$work/dlis-serve" "${run_flags[@]}" -dryrun > "$work/dry-warm.out"
rm -rf "$tc"
"$work/dlis-serve" "${run_flags[@]}" -dryrun > "$work/dry-cold.out"
cmp "$work/dry-cold.out" "$work/dry-warm.out"

cold_ms=$(sed -n 's/^server ready in \([0-9]*\) ms$/\1/p' "$work/cold.log")
warm_ms=$(sed -n 's/^server ready in \([0-9]*\) ms$/\1/p' "$work/warm.log")
req_s=$(awk '/^BenchmarkServeThroughput/ {for (i = 1; i <= NF; i++) if ($i == "req/s") v = $(i-1)} END {print v}' "$work/serve-bench.out")

{
  echo '{'
  echo '  "bench": "BENCH_7",'
  echo "  \"serveReqPerSec\": ${req_s:-0},"
  echo '  "planBench": ['
  awk '/^BenchmarkPlanInference\// {
    name = $1; sub(/^BenchmarkPlanInference\//, "", name); sub(/-[0-9]+$/, "", name)
    nsop = ""; allocs = ""
    for (i = 1; i <= NF; i++) {
      if ($i == "ns/op") nsop = $(i-1)
      if ($i == "allocs/op") allocs = $(i-1)
    }
    printf "%s    {\"name\": \"%s\", \"nsPerOp\": %s, \"allocsPerOp\": %s}", sep, name, nsop, allocs
    sep = ",\n"
  } END { print "" }' "$work/plan-bench.out"
  echo '  ],'
  echo "  \"tunerColdStartMs\": ${cold_ms:-0},"
  echo "  \"tunerWarmStartMs\": ${warm_ms:-0}"
  echo '}'
} > "$out"
echo "wrote $out"
cat "$out"
