package dlis

import (
	"bytes"
	"context"
	"errors"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBuildModelPublicAPI(t *testing.T) {
	for _, name := range ModelNames() {
		if name == "vgg16" || name == "resnet18" {
			continue // exercised by internal suites; slow to build here
		}
		net, err := BuildModel(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if net.ParamCount() == 0 {
			t.Fatalf("%s has no parameters", name)
		}
	}
	if _, err := BuildModel("lenet", 1); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestStackRoundtrip(t *testing.T) {
	inst, err := Instantiate(StackConfig{
		Model:     "mini-resnet",
		Technique: Plain,
		Backend:   OMP,
		Threads:   2,
		Platform:  "odroid-xu4",
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	img := NewImage(1, 32, 32, 7)
	res := inst.Run(img)
	if res.Output.Shape()[1] != 10 {
		t.Fatalf("logit shape %v", res.Output.Shape())
	}
	if sim := inst.Simulate(); sim <= 0 {
		t.Fatalf("simulated time %v", sim)
	}
	if mb := inst.MemoryMB(); mb <= 0 {
		t.Fatalf("memory %v", mb)
	}
}

func TestPlatformsPublicAPI(t *testing.T) {
	if len(Platforms()) != 2 {
		t.Fatalf("expected the paper's two platforms, got %d", len(Platforms()))
	}
	p, err := PlatformByName("odroid-xu4")
	if err != nil || p.GPU == nil {
		t.Fatalf("odroid lookup failed: %v", err)
	}
}

func TestTablesPublicAPI(t *testing.T) {
	for _, model := range ModelNames() {
		t3, err := TableIII(model)
		if err != nil {
			t.Fatal(err)
		}
		t5, err := TableV(model)
		if err != nil {
			t.Fatal(err)
		}
		if t3[WeightPruned].Sparsity <= 0 || t5[ChannelPruned].CompressionRate <= 0 {
			t.Fatalf("%s: implausible operating points %+v %+v", model, t3, t5)
		}
	}
}

func TestSyntheticCIFARAndTraining(t *testing.T) {
	trainSet, testSet := SyntheticCIFAR(64, 16, 3)
	if trainSet.Len() != 64 || testSet.Len() != 16 {
		t.Fatalf("split %d/%d", trainSet.Len(), testSet.Len())
	}
	net, err := BuildModel("mini-mobilenet", 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 1
	res := Train(net, trainSet, testSet, cfg)
	if res.Steps == 0 {
		t.Fatal("training took no steps")
	}
	acc := Evaluate(net, testSet, 1)
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v out of range", acc)
	}
}

func TestExperimentsPublicAPI(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 12 {
		t.Fatalf("expected ≥12 experiments, got %v", ids)
	}
	var buf bytes.Buffer
	if err := RunExperiment("tab3", &buf, DefaultExperimentOptions()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "76.54") {
		t.Fatalf("tab3 output missing paper anchor:\n%s", buf.String())
	}
}

func TestGPUBackendConfigs(t *testing.T) {
	// The GPU backends are valid only for plain models on the Odroid.
	inst, err := Instantiate(StackConfig{
		Model: "mini-mobilenet", Technique: Plain,
		Backend: OCL, Threads: 1, Platform: "odroid-xu4", Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ocl := inst.Simulate()
	inst2, err := Instantiate(StackConfig{
		Model: "mini-mobilenet", Technique: Plain,
		Backend: CLBlast, Threads: 1, Platform: "odroid-xu4", Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	clb := inst2.Simulate()
	if ocl <= 0 || clb <= 0 {
		t.Fatalf("GPU simulations must be positive: ocl=%v clblast=%v", ocl, clb)
	}
	if clb <= ocl {
		t.Fatalf("CLBlast must lose to hand-tuned OpenCL at CIFAR scale: %v vs %v", clb, ocl)
	}
}

func TestConcurrentInferenceIsSafe(t *testing.T) {
	// After Instantiate (which freezes CSR views), concurrent Run calls
	// on separate inputs must be race-free: inference touches no layer
	// caches. Run with -race to enforce.
	inst, err := Instantiate(StackConfig{
		Model: "mini-resnet", Technique: WeightPruned,
		Point:   OperatingPoint{Sparsity: 0.5},
		Backend: OMP, Threads: 1, Platform: "intel-i7", Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *Tensor, 4)
	for i := 0; i < 4; i++ {
		go func(seed uint64) {
			done <- inst.Run(NewImage(1, 32, 32, seed)).Output
		}(uint64(i + 1))
	}
	for i := 0; i < 4; i++ {
		out := <-done
		if !out.AllFinite() {
			t.Fatal("concurrent inference produced non-finite output")
		}
	}
}

func TestServerPublicAPI(t *testing.T) {
	// The serving subsystem end to end through the facade: two stacks
	// side by side, concurrent clients, statistics, graceful close.
	cfg := DefaultServerConfig()
	cfg.Stacks = []ServerStack{
		{Stack: StackConfig{Model: "mini-resnet", Technique: Plain,
			Backend: OMP, Threads: 1, Platform: "odroid-xu4", Seed: 1}},
		{Name: "mobile-wp", Stack: StackConfig{Model: "mini-mobilenet", Technique: WeightPruned,
			Point:   OperatingPoint{Sparsity: 0.5},
			Backend: OMP, Threads: 1, Platform: "odroid-xu4", Seed: 1}},
	}
	cfg.Replicas, cfg.MaxBatch, cfg.MaxDelay = 2, 4, time.Millisecond
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			img := NewImage(1, 32, 32, uint64(c+1))
			for _, stack := range []string{"mini-resnet/plain", "mobile-wp"} {
				resp, err := srv.Do(ctx, Request{Target: stack, Images: []*Tensor{img}})
				if err != nil {
					t.Errorf("%s: %v", stack, err)
					return
				}
				r, err := resp.Wait(ctx)
				if err != nil {
					t.Errorf("%s: %v", stack, err)
					return
				}
				res := r.First()
				if !res.Output.AllFinite() || res.Output.NumElements() != 10 {
					t.Errorf("%s: implausible logits %v", stack, res.Output)
				}
			}
		}(c)
	}
	wg.Wait()
	srv.Close()
	for stack, st := range srv.AllStats() {
		if st.Completed != 6 || st.Failed != 0 {
			t.Fatalf("%s: %d completed / %d failed, want 6/0", stack, st.Completed, st.Failed)
		}
		if st.Latency.P99 <= 0 || st.ReplicaMemoryMB <= 0 {
			t.Fatalf("%s: empty stats %+v", stack, st)
		}
	}
	if _, err := srv.Do(ctx, Request{Target: "mobile-wp", Images: []*Tensor{NewImage(1, 32, 32, 1)}}); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("infer after close: %v, want ErrServerClosed", err)
	}
}

func TestDeterministicInstantiation(t *testing.T) {
	cfg := StackConfig{
		Model: "mini-vgg", Technique: Quantised,
		Point:   OperatingPoint{TTQThreshold: 0.1},
		Backend: OMP, Threads: 1, Platform: "intel-i7", Seed: 7,
	}
	a, err := Instantiate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Instantiate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Same config, same seed → identical logits across builds.
	img := NewImage(1, 32, 32, 9)
	outA := a.Run(img).Output
	outB := b.Run(img).Output
	for i, v := range outA.Data() {
		if v != outB.Data()[i] {
			t.Fatal("same seed must produce identical instances")
		}
	}
}

func TestEndpointPublicAPI(t *testing.T) {
	// SLO-routed multi-variant serving end to end through the facade:
	// one endpoint over three compressed variants of one mini model,
	// routed requests, per-variant statistics, typed overload handling.
	base := StackConfig{Model: "mini-vgg", Technique: Plain,
		Backend: OMP, Threads: 1, Platform: "odroid-xu4", Seed: 1}
	cfg := DefaultServerConfig()
	cfg.Endpoints = []ServerEndpoint{NewEndpoint("vgg", base, Plain, WeightPruned, Quantised)}
	cfg.Replicas, cfg.MaxBatch, cfg.MaxDelay = 1, 2, time.Millisecond
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx := context.Background()
	if got := srv.Endpoints(); len(got) != 1 || got[0] != "vgg" {
		t.Fatalf("endpoints = %v", got)
	}
	rf, err := srv.Do(ctx, Request{
		Target: "vgg", Images: []*Tensor{NewImage(1, 32, 32, 3)},
		SLO: SLO{MinAccuracy: 90, Priority: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := rf.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	res := resp.First()
	// mini models have no Pareto curves: the router must have fallen
	// back to the plain variant rather than guessed.
	if res.Stack != "vgg/plain" {
		t.Fatalf("served by %q, want the plain fallback", res.Stack)
	}
	if !res.Output.AllFinite() || res.Output.NumElements() != 10 {
		t.Fatalf("implausible logits %v", res.Output)
	}
	st, err := srv.EndpointStats("vgg")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Variants) != 3 || st.Routed != 1 {
		t.Fatalf("endpoint stats = %+v, want 3 variants / 1 routed", st)
	}
	var sawPlain bool
	for _, v := range st.Variants {
		if v.Name == "vgg/plain" {
			sawPlain = v.Routed == 1
		}
	}
	if !sawPlain {
		t.Fatal("routed request not attributed to the plain variant")
	}
	if all := srv.AllStats(); all["vgg/plain"].Routed != 1 {
		t.Fatalf("AllStats missing routed traffic: %+v", all["vgg/plain"])
	}
}

func TestClientPublicAPI(t *testing.T) {
	// The transport-agnostic Client surface end to end through the
	// facade: the same Request answered by a LocalClient, by an
	// HTTPClient over a loopback listener, and by a MuxClient over a
	// loopback DLW2 session — with identical logits and with the typed
	// sentinels surviving both wires under errors.Is.
	base := StackConfig{Model: "mini-vgg", Technique: Plain,
		Backend: OMP, Threads: 1, Platform: "odroid-xu4", Seed: 1}
	cfg := DefaultServerConfig()
	cfg.Endpoints = []ServerEndpoint{NewEndpoint("vgg", base, Plain, WeightPruned)}
	cfg.Replicas, cfg.MaxBatch, cfg.MaxDelay = 1, 2, time.Millisecond
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	local := NewLocalClient(srv)
	defer local.Close() // owns the server shutdown
	ts := httptest.NewServer(NewHTTPHandler(srv, 0))
	defer ts.Close()
	remote := NewHTTPClient(ts.URL)
	defer remote.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ml := NewMuxListener(srv, MuxListenerConfig{})
	go ml.Serve(ln)
	defer ml.Close()
	mux := NewMuxClient(ln.Addr().String())
	defer mux.Close()

	ctx := context.Background()
	img := NewImage(1, 32, 32, 3)
	req := Request{Target: "vgg", Images: []*Tensor{img}, SLO: SLO{MinAccuracy: 90, Priority: 1}}
	want, err := local.InferSync(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	for name, c := range map[string]Client{"remote": remote, "mux": mux} {
		got, err := c.InferSync(ctx, req)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		wf, gf := want.First(), got.First()
		if wf.Stack != gf.Stack || wf.Class != gf.Class {
			t.Fatalf("transports disagree: local %s/%d, %s %s/%d", wf.Stack, wf.Class, name, gf.Stack, gf.Class)
		}
		for i, v := range wf.Output.Data() {
			if v != gf.Output.Data()[i] {
				t.Fatalf("%s logits differ from local logits", name)
			}
		}
	}

	// Session streaming through the facade: Send pipelines without
	// awaiting, Recv collects in completion order, ids match up — the
	// same contract in process and over a DLW2 connection.
	for name, c := range map[string]Client{"local": local, "mux": mux} {
		sess, err := c.Session(ctx)
		if err != nil {
			t.Fatalf("%s session: %v", name, err)
		}
		sent := map[uint64]bool{}
		for i := 0; i < 3; i++ {
			id, err := sess.Send(req)
			if err != nil {
				t.Fatalf("%s send %d: %v", name, i, err)
			}
			if sent[id] {
				t.Fatalf("%s reused session id %d", name, id)
			}
			sent[id] = true
		}
		for i := 0; i < 3; i++ {
			res, err := sess.Recv()
			if err != nil {
				t.Fatalf("%s recv %d: %v", name, i, err)
			}
			if !sent[res.ID] {
				t.Fatalf("%s recv unknown id %d", name, res.ID)
			}
			if res.Err != nil {
				t.Fatalf("%s session result %d: %v", name, res.ID, res.Err)
			}
			if res.Resp.First().Class != want.First().Class {
				t.Fatalf("%s session logits disagree with sync path", name)
			}
		}
		if err := sess.Close(); err != nil {
			t.Fatalf("%s session close: %v", name, err)
		}
	}

	// The unified option vocabulary: the same slice configures any
	// transport, and a stamped tenant is visible in the server's meter.
	opts := []ClientOption{WithTimeout(5 * time.Second), WithTenant("opted"), WithPoolSize(2)}
	stamped := NewMuxClient(ln.Addr().String(), opts...)
	if _, err := stamped.InferSync(ctx, req); err != nil {
		t.Fatal(err)
	}
	stamped.Close()
	if st, err := local.Stats(ctx); err != nil || st.Tenants["opted"].Requests == 0 {
		t.Fatalf("WithTenant stamp not metered: tenants %+v, %v", st.Tenants, err)
	}

	// Discovery parity: both transports list the same targets.
	lm, err := local.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := remote.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(lm) != len(rm) || lm[0].Name != rm[0].Name || lm[0].Kind != rm[0].Kind {
		t.Fatalf("Models disagree: local %+v, remote %+v", lm, rm)
	}

	// The acceptance contract: typed sentinels hold across every
	// transport exactly as for local calls.
	for name, c := range map[string]Client{"local": local, "remote": remote, "mux": mux} {
		if _, err := c.InferSync(ctx, Request{Target: "gone", Images: []*Tensor{img}}); !errors.Is(err, ErrUnknownTarget) {
			t.Fatalf("%s unknown target: err = %v, want ErrUnknownTarget", name, err)
		}
	}
	// Give every variant pool an observed batch time, then demand a
	// deadline no batch can make: the latency gate must answer
	// ErrNoVariant — across the wire too.
	for _, m := range lm {
		if m.Kind == "stack" {
			if _, err := remote.InferBatch(ctx, m.Name, []*Tensor{img}); err != nil {
				t.Fatalf("warming %s: %v", m.Name, err)
			}
		}
	}
	impossible := Request{Target: "vgg", Images: []*Tensor{img}, SLO: SLO{MaxLatency: time.Nanosecond, Priority: 1}}
	if _, err := remote.InferSync(ctx, impossible); !errors.Is(err, ErrNoVariant) {
		t.Fatalf("impossible deadline over HTTP: err = %v, want ErrNoVariant", err)
	}
	if _, err := mux.InferSync(ctx, impossible); !errors.Is(err, ErrNoVariant) {
		t.Fatalf("impossible deadline over DLW2: err = %v, want ErrNoVariant", err)
	}
	srv.Close()
	if _, err := remote.InferSync(ctx, req); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("closed server over HTTP: err = %v, want ErrServerClosed", err)
	}
	if _, err := mux.InferSync(ctx, req); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("closed server over DLW2: err = %v, want ErrServerClosed", err)
	}
}

func TestClusterPublicAPI(t *testing.T) {
	// The sharded serving tier through the facade: a Cluster over two
	// in-process servers is a drop-in Client — requests are answered,
	// the merged stats fold both members, the snapshot reports health,
	// and Close drains the fleet.
	newServer := func() *Server {
		cfg := DefaultServerConfig()
		cfg.Stacks = []ServerStack{{Name: "m", Stack: StackConfig{
			Model: "mini-mobilenet", Technique: Plain,
			Backend: OMP, Threads: 1, Platform: "odroid-xu4", Seed: 1,
		}}}
		cfg.Replicas, cfg.MaxBatch, cfg.MaxDelay = 1, 4, time.Millisecond
		srv, err := NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}
	cl, err := NewClusterWithConfig(ClusterConfig{ProbeInterval: 50 * time.Millisecond},
		ClusterMember{Name: "a", Client: NewLocalClient(newServer())},
		ClusterMember{Name: "b", Client: NewLocalClient(newServer())},
	)
	if err != nil {
		t.Fatal(err)
	}
	var _ Client = cl // the acceptance contract: Cluster is a Client verbatim

	ctx := context.Background()

	// The redesigned constructor: a member slice plus functional
	// options, with NewClusterWithConfig (above) kept as the legacy
	// config-struct wrapper.
	cl2, err := NewCluster([]ClusterMember{{Name: "c", Client: NewLocalClient(newServer())}},
		WithProbeInterval(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if ms, err := cl2.Models(ctx); err != nil || len(ms) != 1 {
		t.Fatalf("option-built cluster models = %+v, %v", ms, err)
	}
	if err := cl2.Close(); err != nil {
		t.Fatal(err)
	}
	ms, err := cl.Models(ctx)
	if err != nil || len(ms) != 1 || ms[0].Name != "m" {
		t.Fatalf("cluster models = %+v, %v", ms, err)
	}
	const n = 8
	for i := 0; i < n; i++ {
		resp, err := cl.InferSync(ctx, Request{Target: "m", Images: []*Tensor{NewImage(1, 32, 32, uint64(i+1))}})
		if err != nil {
			t.Fatal(err)
		}
		if res := resp.First(); !res.Output.AllFinite() || res.Output.NumElements() != 10 {
			t.Fatalf("request %d: implausible logits %v", i, res.Output)
		}
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pools["m"].Completed != n {
		t.Fatalf("merged completed = %d, want %d", st.Pools["m"].Completed, n)
	}
	snap := cl.Snapshot()
	if len(snap.Members) != 2 || snap.Served != n {
		t.Fatalf("cluster snapshot = %+v", snap)
	}
	for _, m := range snap.Members {
		if !m.Healthy {
			t.Fatalf("member %s unhealthy in a loopback cluster", m.Member)
		}
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.InferSync(ctx, Request{Target: "m", Images: []*Tensor{NewImage(1, 32, 32, 1)}}); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("closed cluster: err = %v, want ErrServerClosed", err)
	}
}

// TestFleetConfigPublicAPI exercises the declarative-config surface
// end-to-end through the facade: parse a fleet file, validate it with
// a typed error on the broken variant, resolve defaults, lower it to a
// ServerConfig and serve one request through it.
func TestFleetConfigPublicAPI(t *testing.T) {
	cfg, err := ParseFleetConfig([]byte(`{
		"pool": {"replicas": 1, "batch": 4},
		"models": [{"kind": "mini-vgg"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := cfg.Mode(); got != FleetModeLocal {
		t.Fatalf("mode = %v, want FleetModeLocal", got)
	}
	r := cfg.Resolve()
	if r.Load == nil || len(r.Load.Targets) != 1 || r.Load.Targets[0] != "mini-vgg/plain" {
		t.Fatalf("resolved load = %+v, want the derived mini-vgg/plain target", r.Load)
	}
	if cfg.Topology() == "" {
		t.Fatal("Topology must render the resolved fleet")
	}

	scfg, err := cfg.ServerConfig()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(scfg)
	if err != nil {
		t.Fatal(err)
	}
	client := NewLocalClient(srv)
	defer client.Close()
	res, err := client.InferSync(context.Background(), Request{
		Target: "mini-vgg/plain", Images: []*Tensor{NewImage(1, 32, 32, 1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 1 {
		t.Fatalf("results = %+v, want one", res.Results)
	}

	// A broken config must reject with the typed, field-path error.
	bad, err := ParseFleetConfig([]byte(`{"models": [{"kind": "alexnet"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var ferr *FleetConfigError
	if err := bad.Validate(); !errors.As(err, &ferr) || ferr.Path != "models[0].kind" {
		t.Fatalf("validate error = %v, want *FleetConfigError at models[0].kind", err)
	}

	// Unknown fields must be parse errors, not silently dropped config.
	if _, err := ParseFleetConfig([]byte(`{"modles": []}`)); err == nil {
		t.Fatal("ParseFleetConfig accepted an unknown field")
	}
}
