// Package dlis is the public API of this reproduction of
// "Characterising Across-Stack Optimisations for Deep Convolutional
// Neural Networks" (Turner et al., IISWC 2018): the Deep Learning
// Inference Stack.
//
// The package is a deliberately thin facade over the internal
// implementation packages; everything a downstream user needs — building
// the paper's networks, applying the three compression techniques,
// configuring the five stack layers, executing real inference, and
// projecting execution onto the modelled hardware platforms — is
// reachable from here.
//
// Quick start:
//
//	net, _ := dlis.BuildModel("resnet18", 42)
//	cfg := dlis.StackConfig{
//	    Model: "resnet18", Technique: dlis.ChannelPruned,
//	    Point: dlis.OperatingPoint{CompressionRate: 0.6},
//	    Backend: dlis.OMP, Threads: 4, Platform: "odroid-xu4",
//	}
//	inst, _ := dlis.Instantiate(cfg)
//	seconds := inst.Simulate()       // modelled platform time
//	out := inst.Run(input)           // real host execution
//	mb := inst.MemoryMB()            // runtime footprint
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package dlis

import (
	"io"
	"time"

	"repro/internal/blas"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/pareto"
	"repro/internal/serve"
	"repro/internal/serve/cluster"
	"repro/internal/serve/fleetcfg"
	"repro/internal/serve/httpapi"
	"repro/internal/serve/muxwire"
	"repro/internal/tensor"
	"repro/internal/train"
)

// Re-exported stack-configuration types (see internal/core).
type (
	// StackConfig selects one candidate per stack layer.
	StackConfig = core.Config
	// OperatingPoint pins a compression level.
	OperatingPoint = core.OperatingPoint
	// Instance is an instantiated, runnable stack configuration.
	Instance = core.Instance
	// Technique is the compression technique (stack layer 2).
	Technique = core.Technique
	// Backend is the execution substrate (stack layer 4).
	Backend = core.Backend
	// Network is a runnable neural network.
	Network = nn.Network
	// Tensor is the dense NCHW array type.
	Tensor = tensor.Tensor
	// Platform is a modelled hardware target.
	Platform = hw.Platform
)

// Compression techniques, in the paper's legend order.
const (
	Plain         = core.Plain
	WeightPruned  = core.WeightPruned
	ChannelPruned = core.ChannelPruned
	Quantised     = core.Quantised
)

// Execution backends.
const (
	OMP     = core.OMP
	OCL     = core.OCL
	CLBlast = core.CLBlast
)

// BuildModel constructs one of the paper's networks ("vgg16",
// "resnet18", "mobilenet", or a "mini-*" training variant) with
// deterministic initialisation from the seed.
func BuildModel(name string, seed uint64) (*Network, error) {
	return models.ByName(name, tensor.NewRNG(seed|1))
}

// ModelNames lists the full-size model names.
func ModelNames() []string { return models.Names() }

// Instantiate builds a stack configuration (see StackConfig).
func Instantiate(cfg StackConfig) (*Instance, error) { return core.Instantiate(cfg) }

// Platforms returns the two modelled hardware targets of the paper.
func Platforms() []*Platform { return hw.Platforms() }

// PlatformByName resolves "odroid-xu4" or "intel-i7".
func PlatformByName(name string) (*Platform, error) { return hw.ByName(name) }

// NewImage allocates an NCHW input tensor (batch, 3, h, w) filled with
// deterministic noise — convenient for benchmarks and smoke tests.
func NewImage(batch, h, w int, seed uint64) *Tensor {
	t := tensor.New(batch, 3, h, w)
	t.FillNormal(tensor.NewRNG(seed|1), 0, 1)
	return t
}

// TableIII returns the paper's baseline operating points for a model.
func TableIII(model string) (map[Technique]OperatingPoint, error) { return pareto.TableIII(model) }

// TableV returns the paper's fixed-90%-accuracy operating points.
func TableV(model string) (map[Technique]OperatingPoint, error) { return pareto.TableV(model) }

// SyntheticCIFAR generates the deterministic CIFAR-shaped synthetic
// dataset used by the training experiments (see DESIGN.md §2 for the
// substitution rationale).
func SyntheticCIFAR(trainN, testN int, seed uint64) (trainSet, testSet *data.Dataset) {
	cfg := data.DefaultConfig()
	cfg.Train, cfg.Test, cfg.Seed = trainN, testN, seed
	return data.Generate(cfg)
}

// Train runs SGD training of a network on a dataset (also the
// fine-tuning entry point after compression).
func Train(net *Network, trainSet, testSet *data.Dataset, cfg train.Config) train.Result {
	return train.Run(net, trainSet, testSet, cfg)
}

// TrainConfig re-exports the training configuration type.
type TrainConfig = train.Config

// DefaultTrainConfig returns a configuration suited to mini models.
func DefaultTrainConfig() TrainConfig { return train.DefaultConfig() }

// Evaluate returns top-1 accuracy of a network on a dataset.
func Evaluate(net *Network, d *data.Dataset, threads int) float64 {
	return train.Evaluate(net, d, threads)
}

// ExperimentIDs lists the table/figure generators ("fig1" ... "ablate").
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment regenerates one paper artifact into w. Options zero
// value gives the fast calibrated mode.
func RunExperiment(id string, w io.Writer, opts ExperimentOptions) error {
	return experiments.Run(id, w, opts)
}

// RunAllExperiments regenerates every artifact in order.
func RunAllExperiments(w io.Writer, opts ExperimentOptions) error {
	return experiments.RunAll(w, opts)
}

// ExperimentOptions re-exports the experiment options type.
type ExperimentOptions = experiments.Options

// DefaultExperimentOptions returns the fast calibrated configuration.
func DefaultExperimentOptions() ExperimentOptions { return experiments.DefaultOptions() }

// Re-exported serving types (see internal/serve and DESIGN.md §6): the
// batched inference server that replicates stack configurations behind
// a dynamic batcher.
type (
	// Server is the batched inference server; construct with NewServer.
	Server = serve.Server
	// ServerConfig configures a Server: the hosted stacks plus the
	// Replicas / MaxBatch / MaxDelay / QueueCap tuning knobs.
	ServerConfig = serve.Config
	// ServerStack names one hosted stack configuration.
	ServerStack = serve.StackSpec
	// ServeResult is the outcome of one single-image request.
	ServeResult = serve.Result
	// ServeFuture is the pending result of a submitted request.
	ServeFuture = serve.Future
	// ServeStats is a point-in-time pool statistics snapshot
	// (throughput, p50/p99 latency, batch occupancy, queue depth).
	ServeStats = serve.Stats
	// ServeLatencySummary is the latency breakdown inside ServeStats.
	ServeLatencySummary = metrics.LatencySummary
	// SLO is a request's service-level objective for routed endpoints:
	// MinAccuracy (modelled top-1 %), MaxLatency (live estimate bound)
	// and Priority (≥1 may spill to costlier variants under load).
	SLO = serve.SLO
	// ServerEndpoint is one SLO-routed logical endpoint fronting a set
	// of compressed variants of the same model.
	ServerEndpoint = serve.EndpointSpec
	// ServerVariant is one endpoint member: a stack spec plus its
	// modelled accuracy.
	ServerVariant = serve.Variant
	// EndpointStats aggregates an endpoint's routed/shed traffic per
	// variant.
	EndpointStats = serve.EndpointStats
	// VariantStats is one endpoint member's routed-traffic snapshot.
	VariantStats = serve.VariantStats
	// OverloadedError is the typed admission rejection, carrying a
	// RetryAfter hint; match it with errors.Is(err, ErrServerOverloaded).
	OverloadedError = serve.OverloadedError
)

// ErrServerClosed is returned by Submit and Infer after Close.
var ErrServerClosed = serve.ErrClosed

// ErrServerOverloaded is the errors.Is sentinel for admission
// rejections: every candidate variant's bounded queue was full, so the
// request was shed instead of blocking unboundedly.
var ErrServerOverloaded = serve.ErrOverloaded

// ErrNoVariant is the errors.Is sentinel for SLOs no hosted variant can
// satisfy even when idle: MinAccuracy above every variant's accuracy,
// or MaxLatency below every candidate's observed batch time. Not
// retryable, unlike ErrServerOverloaded.
var ErrNoVariant = serve.ErrNoVariant

// NewEndpoint builds an SLO-routed endpoint spec over base.Model: one
// variant per technique at its Table III (Pareto-elbow) operating
// point, accuracies from the calibrated Fig. 3 curves. Host it via
// ServerConfig.Endpoints and submit with Server.Route / RouteInfer.
func NewEndpoint(name string, base StackConfig, techs ...Technique) ServerEndpoint {
	return serve.Endpoint(name, base, techs...)
}

// NewEndpointAt is NewEndpoint with explicit operating points (e.g.
// TableV's fixed-90%-accuracy points).
func NewEndpointAt(name string, base StackConfig, points map[Technique]OperatingPoint, techs ...Technique) ServerEndpoint {
	return serve.EndpointAt(name, base, points, techs...)
}

// NewServer instantiates every configured stack (Replicas independent
// replicas each, see Instance.Replicate) and starts serving. Wrap the
// server in NewLocalClient (or expose it with NewHTTPHandler) and
// submit through the Client interface; Close performs a graceful
// drain. See cmd/dlis-serve for a load-generating client.
func NewServer(cfg ServerConfig) (*Server, error) { return serve.New(cfg) }

// DefaultServerConfig returns the fully resolved serving defaults used
// for zero ServerConfig fields (1 replica, batches of up to 8, a 2ms
// window, queue capacity Replicas × MaxBatch × 4, the default latency
// window) — the value advertises exactly what a zero-configured server
// runs with.
func DefaultServerConfig() ServerConfig { return serve.DefaultConfig() }

// Transport-agnostic client surface (see DESIGN.md §8): one
// Request/Response pair over every transport. Client is satisfied by
// LocalClient (in-process, wrapping a Server), HTTPClient (the same
// types over the httpapi wire format), MuxClient (the DLW2 multiplexed
// session transport) and Cluster, so serving code is written once
// against Client and pointed at any deployment. The former
// Server.Submit / Infer / Route / RouteInfer shims are gone — submit
// through a Client.
type (
	// Client is the transport-agnostic serving API: Infer/InferSync
	// with a Request, InferBatch for multi-image convenience, plus
	// Stats, Models, Session and Close.
	Client = serve.Client
	// Request is one inference request: Target (pool or endpoint
	// routing name), Images (one or more C×H×W inputs) and an optional
	// SLO. A zero SLO means direct routing, so the old Submit and Route
	// collapse into one call.
	Request = serve.Request
	// Response holds one ServeResult per request image, in order.
	Response = serve.Response
	// ResponseFuture is the pending Response of an accepted Request;
	// Wait is idempotent.
	ResponseFuture = serve.ResponseFuture
	// ModelInfo describes one routing target (name, kind, input shape,
	// endpoint variants) as reported by Client.Models.
	ModelInfo = serve.ModelInfo
	// ServerStats is the whole-server snapshot Client.Stats returns:
	// every pool plus every endpoint's per-variant breakdown.
	ServerStats = serve.ServerStats
	// LocalClient is the in-process Client over a Server.
	LocalClient = serve.LocalClient
	// HTTPClient is the remote Client: the same Request/Response types
	// round-tripped over HTTP, with typed errors reconstructed so
	// errors.Is(err, ErrServerOverloaded) etc. hold across the wire.
	HTTPClient = httpapi.Client
	// HTTPHandler exposes a Server over HTTP (/v1/infer, /v1/models,
	// /v1/stats); it is an http.Handler for any mux or server.
	HTTPHandler = httpapi.Handler
	// Session is the streaming half of every Client: Send pipelines
	// requests without awaiting execution, Recv delivers completions in
	// completion (not submission) order, matched by the uint64 id Send
	// returned. Native frames-on-one-connection over MuxClient; an
	// adapter over the other transports.
	Session = serve.Session
	// SessionResult is one Session completion: the id, and either the
	// Response or the request's typed error.
	SessionResult = serve.SessionResult
	// ClientOption is a functional constructor option shared by every
	// client transport (NewLocalClient, NewHTTPClient, NewMuxClient,
	// DialBackend): WithTimeout, WithTenant, WithPoolSize.
	ClientOption = serve.ClientOption
	// MuxClient is the remote Client over DLW2 — one persistent TCP
	// connection (a small pool of them) carrying many in-flight
	// requests as interleaved frames — with pipelined submission,
	// reconnect-with-backoff, typed-error reconstruction, and native
	// streaming sessions.
	MuxClient = muxwire.Client
	// MuxListener serves a Server over DLW2; construct with
	// NewMuxListener, run Serve/ListenAndServe, stop with Shutdown
	// (graceful drain) or Close.
	MuxListener = muxwire.Listener
	// MuxListenerConfig tunes a MuxListener (per-session in-flight cap,
	// request body bound); the zero value uses the defaults.
	MuxListenerConfig = muxwire.ListenerConfig
)

// Functional client options, unified across transports. Each transport
// ignores options it has no use for (PoolSize on a LocalClient, say).
//
//	c := dlis.NewMuxClient("backend:18091",
//	    dlis.WithTimeout(2*time.Second),
//	    dlis.WithTenant("batch-jobs"),
//	    dlis.WithPoolSize(4))

// WithTimeout bounds each synchronous call (InferSync, Stats, Models)
// when the caller's ctx carries no earlier deadline.
func WithTimeout(d time.Duration) ClientOption { return serve.WithTimeout(d) }

// WithTenant stamps a default tenant identity on requests that do not
// set one.
func WithTenant(id string) ClientOption { return serve.WithTenant(id) }

// WithPoolSize sizes a connection-pooling transport's pool.
func WithPoolSize(n int) ClientOption { return serve.WithPoolSize(n) }

// DLW2Scheme is the connect-string scheme selecting the mux transport
// ("dlw2://host:port").
const DLW2Scheme = muxwire.Scheme

// NewMuxClient targets a DLW2 listener at addr ("host:port" or
// "dlw2://host:port"). Connections are dialed lazily and redialed with
// backoff; Session opens a dedicated pinned connection for streaming.
func NewMuxClient(addr string, opts ...ClientOption) *MuxClient {
	return muxwire.NewClient(addr, opts...)
}

// NewMuxListener exposes srv over DLW2. The listener does not own the
// server, so it can share one with an HTTPHandler; Shutdown drains
// in-flight sessions gracefully.
func NewMuxListener(srv *Server, cfg MuxListenerConfig) *MuxListener {
	return muxwire.NewListener(srv, cfg)
}

// DialBackend builds the Client for a backend connect string:
// "dlw2://host:port" forces the mux transport, "http://…" forces HTTP,
// and a bare "host:port" prefers mux with automatic HTTP fallback (the
// first call probes the port with a DLW2 hello). This is the dial used
// by cmd/dlis-serve for -connect and cluster members.
func DialBackend(addr string, opts ...ClientOption) Client {
	return muxwire.Dial(addr, opts...)
}

// ErrUnknownTarget is the errors.Is sentinel for requests naming a
// routing target the server does not host (HTTP 404 over the wire).
var ErrUnknownTarget = serve.ErrUnknownTarget

// Per-tenant serving tier (see internal/serve/tenant and DESIGN.md
// §13): requests carry a tenant identity, the server meters per-tenant
// usage (persisted across restarts), enforces per-tenant quotas, and
// admits queued work through weighted deficit-round-robin fair
// scheduling instead of FIFO.
type (
	// TenantConfig enables the tenant tier on a server: the quota
	// window, the usage-persistence file and cadence, and the declared
	// tenant specs. Wire it via ServerConfig.Tenants.
	TenantConfig = serve.TenantConfig
	// TenantSpec declares one tenant's fair-share weight and budgets.
	TenantSpec = serve.TenantSpec
	// TenantUsage is one tenant's metered usage snapshot (requests,
	// images, sheds, quota rejections, model-seconds).
	TenantUsage = serve.TenantUsage
	// QuotaError is the typed per-tenant admission rejection; match it
	// with errors.Is(err, ErrQuotaExceeded). Distinct from
	// OverloadedError: a spent budget must not be retried on another
	// server, a full queue may be.
	QuotaError = serve.QuotaError
)

// ErrQuotaExceeded is the errors.Is sentinel for per-tenant quota
// rejections. It never matches ErrServerOverloaded: overload is a
// property of one server's queue, quota of the tenant's budget
// everywhere, and the cluster tier relies on the distinction to never
// re-place a quota rejection on another member.
var ErrQuotaExceeded = serve.ErrQuotaExceeded

// MaxTenantIDLen bounds a tenant identity in bytes.
const MaxTenantIDLen = serve.MaxTenantIDLen

// ValidateTenantID checks a tenant identity: at most MaxTenantIDLen
// bytes, no control characters; empty is the valid anonymous default.
func ValidateTenantID(id string) error { return serve.ValidateTenantID(id) }

// NewLocalClient wraps a running server in the transport-agnostic
// Client interface. The client owns the server's shutdown: Close
// drains it gracefully.
func NewLocalClient(srv *Server, opts ...ClientOption) *LocalClient {
	return serve.NewLocalClient(srv, opts...)
}

// NewHTTPClient targets a dlis HTTP server at base (e.g.
// "http://host:8080"); per-call deadlines come from the ctx or
// WithTimeout.
func NewHTTPClient(base string, opts ...ClientOption) *HTTPClient {
	return httpapi.NewClient(base, opts...)
}

// NewHTTPHandler exposes srv over HTTP. maxBodyBytes bounds request
// bodies (0 = the 64 MiB default); the caller owns the listener
// lifecycle. See cmd/dlis-serve -listen for a ready-made server mode.
func NewHTTPHandler(srv *Server, maxBodyBytes int64) *HTTPHandler {
	return httpapi.NewHandler(srv, maxBodyBytes)
}

// Sharded cluster serving tier (see DESIGN.md §9): a Cluster is a
// Client over a fleet of member backends — any mix of local, HTTP and
// DLW2 mux clients — with a health-checked member table, least-loaded
// (power-of-two-choices) placement, overload retry on the next-best
// member, and transport-failure failover. NewCluster(members) is a
// drop-in replacement for a single server behind the Client interface.
type (
	// Cluster is the fleet-level Client; construct with NewCluster.
	Cluster = cluster.Cluster
	// ClusterMember couples one backend Client with its reporting name.
	ClusterMember = cluster.Member
	// ClusterConfig tunes health probing (interval, timeout, ejection
	// backoff); the zero value uses the defaults.
	ClusterConfig = cluster.Config
	// ClusterStats is the fleet snapshot Cluster.Snapshot returns:
	// per-member health, served/shed/failed traffic and ejections, plus
	// cluster-level retry and failover counters.
	ClusterStats = cluster.Stats
	// ClusterMemberStats is one member's entry in ClusterStats.
	ClusterMemberStats = cluster.MemberStats
	// ClusterOption is a functional option for NewCluster:
	// WithProbeInterval, WithProbeTimeout, WithEjectionBackoff.
	ClusterOption = cluster.Option
)

// WithProbeInterval sets the cluster health-probe cadence.
func WithProbeInterval(d time.Duration) ClusterOption { return cluster.WithProbeInterval(d) }

// WithProbeTimeout bounds one cluster health probe.
func WithProbeTimeout(d time.Duration) ClusterOption { return cluster.WithProbeTimeout(d) }

// WithEjectionBackoff sets the ejected-member re-probe backoff range.
func WithEjectionBackoff(base, max time.Duration) ClusterOption {
	return cluster.WithBackoff(base, max)
}

// NewCluster assembles a fleet Client over the members, probing each
// member once; members that are down start ejected and are re-admitted
// automatically when they come up. Health-check tuning rides in the
// options tail.
func NewCluster(members []ClusterMember, opts ...ClusterOption) (*Cluster, error) {
	return cluster.NewWithOptions(members, opts...)
}

// NewClusterWithConfig is the config-struct spelling of NewCluster,
// kept for callers that already hold a ClusterConfig (e.g. one resolved
// from a fleet file).
func NewClusterWithConfig(cfg ClusterConfig, members ...ClusterMember) (*Cluster, error) {
	return cluster.New(cfg, members...)
}

// Declarative fleet configuration (see internal/serve/fleetcfg and
// DESIGN.md §10): one JSON file describes a whole serving topology —
// hosted models, SLO-routed endpoints, pool tuning, the server role,
// cluster membership and the load parameters — with strict parsing,
// typed field-path-qualified validation, and flag-parity defaults. The
// lifecycle is ParseFleetConfig → Validate → Resolve → ServerConfig;
// cmd/dlis-serve -config boots any process role from such a file.
type (
	// FleetConfig is the root of a fleet file.
	FleetConfig = fleetcfg.Config
	// FleetServer is the server section (listen address, memory limit,
	// seed).
	FleetServer = fleetcfg.Server
	// FleetCluster is the cluster section (member addresses, probe
	// interval).
	FleetCluster = fleetcfg.Cluster
	// FleetPool is the shared pool tuning (replicas, batch, delay,
	// queue cap).
	FleetPool = fleetcfg.Pool
	// FleetModel declares one stack configuration.
	FleetModel = fleetcfg.Model
	// FleetEndpoint declares one SLO-routed multi-variant endpoint.
	FleetEndpoint = fleetcfg.Endpoint
	// FleetLoad is the closed-loop load-generator section.
	FleetLoad = fleetcfg.Load
	// FleetSLO is the request objective the load generator carries.
	FleetSLO = fleetcfg.SLO
	// FleetTenants is the per-tenant tier section (window, usage file,
	// tenant declarations).
	FleetTenants = fleetcfg.Tenants
	// FleetTenantDef declares one tenant in a fleet file.
	FleetTenantDef = fleetcfg.TenantDef
	// FleetOperatingPoint pins a compression level in a fleet file.
	FleetOperatingPoint = fleetcfg.OperatingPoint
	// FleetDuration is the human-writable duration type fleet files use
	// ("2ms", "1.5s").
	FleetDuration = fleetcfg.Duration
	// FleetConfigError is one validation failure, locating the
	// offending field by its JSON path; match with errors.As.
	FleetConfigError = fleetcfg.Error
	// FleetMode is the process role a fleet config resolves to.
	FleetMode = fleetcfg.Mode
)

// Fleet process roles, derived by FleetConfig.Mode.
const (
	FleetModeLocal   = fleetcfg.ModeLocal
	FleetModeListen  = fleetcfg.ModeListen
	FleetModeConnect = fleetcfg.ModeConnect
	FleetModeCluster = fleetcfg.ModeCluster
)

// ParseFleetConfig decodes a fleet file strictly (unknown fields and
// malformed durations are rejected); call Validate on the result
// before booting anything from it.
func ParseFleetConfig(data []byte) (*FleetConfig, error) { return fleetcfg.Parse(data) }

// TunerCache is the persistent algorithm-tuner cache: timed
// per-geometry kernel verdicts, durable across process starts on the
// same host (see internal/blas).
type TunerCache = blas.TunerCache

// OpenTunerCache opens (creating if needed) the tuner cache rooted at
// dir. Corrupt or stale cache files read as empty; only an unusable
// directory errors.
func OpenTunerCache(dir string) (*TunerCache, error) { return blas.OpenTunerCache(dir) }

// SetTunerCache installs the disk cache behind plan compilation's
// algorithm tuner; install before constructing servers so boot-time
// plan compiles resolve through it. nil removes it.
func SetTunerCache(c *TunerCache) { nn.SetTunerCache(c) }

// TunerCounters reports how many per-geometry algorithm selections
// were timed fresh, served by the in-process memo, and served by the
// disk cache since process start (or the last ResetTunerCounters).
func TunerCounters() (timed, memoHits, diskHits uint64) { return nn.TunerCounters() }

// ResetTunerCounters zeroes the tuner counters.
func ResetTunerCounters() { nn.ResetTunerCounters() }
