package dlis

// Benchmark harness: one benchmark per paper artifact (tables and
// figures). Each benchmark does real work on the host — executing the
// engine kernels, instantiating stack configurations, or evaluating the
// platform models — and attaches the projected full-size platform
// seconds as custom metrics ("sim-sec"), since the paper's absolute
// numbers come from hardware this container does not have (DESIGN.md §2).
//
// Regenerate the full text artifacts with: go run ./cmd/dlis-bench

import (
	"context"
	"fmt"
	"net"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/blas"
	"repro/internal/compress/channel"
	"repro/internal/compress/huffman"
	"repro/internal/compress/prune"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/pareto"
	"repro/internal/serve"
	"repro/internal/sparse"
	"repro/internal/tensor"
)

// benchCache memoises full-size instantiations across benchmarks.
var benchCache sync.Map

func benchInstance(b *testing.B, model string, tech core.Technique, pts map[core.Technique]core.OperatingPoint) *core.Instance {
	b.Helper()
	key := fmt.Sprintf("%s/%v/%+v", model, tech, pts[tech])
	if v, ok := benchCache.Load(key); ok {
		return v.(*core.Instance)
	}
	inst, err := core.Instantiate(core.Config{
		Model: model, Technique: tech, Point: pts[tech],
		Backend: core.OMP, Threads: 1, Platform: "odroid-xu4", Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	benchCache.Store(key, inst)
	return inst
}

func tableIII(b *testing.B, model string) map[core.Technique]core.OperatingPoint {
	b.Helper()
	pts, err := pareto.TableIII(model)
	if err != nil {
		b.Fatal(err)
	}
	return pts
}

func tableV(b *testing.B, model string) map[core.Technique]core.OperatingPoint {
	b.Helper()
	pts, err := pareto.TableV(model)
	if err != nil {
		b.Fatal(err)
	}
	return pts
}

// BenchmarkFig1ExpectedVsObserved executes the real dense and CSR
// convolution kernels of a weight-pruned network (mini-VGG on the host)
// and reports the simulated full-size VGG-16/i7 numbers of Fig. 1.
func BenchmarkFig1ExpectedVsObserved(b *testing.B) {
	i7, _ := hw.ByName("intel-i7")
	for _, sparsity := range []float64{0.2, 0.5, 0.8} {
		for _, algo := range []nn.Algo{nn.Direct, nn.SparseDirect} {
			b.Run(fmt.Sprintf("sparsity=%.0f%%/%s", sparsity*100, algo), func(b *testing.B) {
				net, err := models.ByName("mini-vgg", tensor.NewRNG(1))
				if err != nil {
					b.Fatal(err)
				}
				prune.NetworkToSparsity(net, sparsity)
				full := benchInstance(b, "vgg16", core.WeightPruned,
					map[core.Technique]core.OperatingPoint{core.WeightPruned: {Sparsity: sparsity}})
				format := metrics.Dense
				if algo == nn.SparseDirect {
					format = metrics.CSR
				}
				sim := i7.NetworkTime(core.Workload(full.Net, 1, algo, format), 1)
				in := tensor.New(1, 3, 32, 32)
				in.FillNormal(tensor.NewRNG(2), 0, 1)
				ctx := nn.Inference()
				ctx.Algo = algo
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_ = net.Forward(&ctx, in)
				}
				b.ReportMetric(sim, "sim-sec")
			})
		}
	}
}

// BenchmarkFig3aWeightPruning measures the magnitude-pruning kernel
// itself (mask construction over a full-size layer) and reports the
// calibrated accuracy at the resulting sparsity.
func BenchmarkFig3aWeightPruning(b *testing.B) {
	for _, model := range models.Names() {
		b.Run(model, func(b *testing.B) {
			curve, err := pareto.WeightPruningCurve(model)
			if err != nil {
				b.Fatal(err)
			}
			p := nn.NewParam("w", 512, 512, 3, 3)
			p.W.FillNormal(tensor.NewRNG(3), 0, 0.05)
			orig := p.W.Clone()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				p.W.CopyFrom(orig)
				p.Mask = nil
				b.StartTimer()
				prune.ToSparsity(p, 0.8)
			}
			b.ReportMetric(curve.At(0.8), "acc-%@80")
		})
	}
}

// BenchmarkFig3bChannelPruning measures channel-surgery throughput on a
// mini model and reports the calibrated accuracy at the paper's elbow.
func BenchmarkFig3bChannelPruning(b *testing.B) {
	for _, model := range models.Names() {
		b.Run(model, func(b *testing.B) {
			curve, err := pareto.ChannelPruningCurve(model)
			if err != nil {
				b.Fatal(err)
			}
			pts := tableIII(b, model)
			rate := pts[core.ChannelPruned].CompressionRate
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				mini, _ := models.ByName("mini-vgg", tensor.NewRNG(4))
				b.StartTimer()
				// Real surgery: shrink the mini network to the rate.
				channel.UniformShrink(mini, rate)
			}
			b.ReportMetric(curve.At(rate), "acc-%@elbow")
		})
	}
}

// BenchmarkFig3cQuantisation measures the ternary-quantisation kernel
// over a full-size layer and reports calibrated accuracy at the elbow.
func BenchmarkFig3cQuantisation(b *testing.B) {
	for _, model := range models.Names() {
		b.Run(model, func(b *testing.B) {
			curve, err := pareto.QuantisationCurve(model)
			if err != nil {
				b.Fatal(err)
			}
			pts := tableIII(b, model)
			thr := pts[core.Quantised].TTQThreshold
			w := tensor.New(512, 512, 3, 3)
			w.FillNormal(tensor.NewRNG(5), 0, 0.05)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				delta := float32(thr) * w.AbsMax()
				count := 0
				for _, v := range w.Data() {
					if v > delta || v < -delta {
						count++
					}
				}
				_ = count
			}
			b.ReportMetric(curve.At(thr), "acc-%@thr")
		})
	}
}

// BenchmarkFig4Baselines evaluates the platform cost model for every
// model × technique × platform of Fig. 4 and reports the simulated
// seconds at the maximum thread count.
func BenchmarkFig4Baselines(b *testing.B) {
	for _, model := range models.Names() {
		pts := tableIII(b, model)
		for _, tech := range core.Techniques() {
			inst := benchInstance(b, model, tech, pts)
			work := core.Workload(inst.Net, 1, inst.Config.Algo(), inst.Config.Format())
			for _, platform := range hw.Platforms() {
				name := fmt.Sprintf("%s/%s/%s", model, tech, platform.Name)
				b.Run(name, func(b *testing.B) {
					var sim float64
					for i := 0; i < b.N; i++ {
						sim = platform.NetworkTime(work, platform.CPU.MaxThreads)
					}
					b.ReportMetric(sim, "sim-sec")
				})
			}
		}
	}
}

// BenchmarkFig4HostExecution really executes each technique's kernel
// path on the host engine (mini models) — the wall-clock complement to
// the simulated Fig. 4 numbers.
func BenchmarkFig4HostExecution(b *testing.B) {
	type variant struct {
		name string
		algo nn.Algo
		prep func(*nn.Network)
	}
	variants := []variant{
		{"plain", nn.Direct, func(*nn.Network) {}},
		{"weight-pruning", nn.SparseDirect, func(n *nn.Network) { prune.NetworkToSparsity(n, 0.77) }},
		{"quantisation", nn.SparseDirect, func(n *nn.Network) { prune.NetworkToSparsity(n, 0.70) }},
	}
	for _, v := range variants {
		b.Run("mini-vgg/"+v.name, func(b *testing.B) {
			net, err := models.ByName("mini-vgg", tensor.NewRNG(6))
			if err != nil {
				b.Fatal(err)
			}
			v.prep(net)
			net.Freeze()
			in := tensor.New(1, 3, 32, 32)
			in.FillNormal(tensor.NewRNG(7), 0, 1)
			ctx := nn.Inference()
			ctx.Algo = v.algo
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = net.Forward(&ctx, in)
			}
		})
	}
}

// BenchmarkFig5FixedAccuracy reports the simulated Fig. 5 bars: the
// Table V operating points on the Odroid at 8 threads.
func BenchmarkFig5FixedAccuracy(b *testing.B) {
	od, _ := hw.ByName("odroid-xu4")
	for _, model := range models.Names() {
		pts := tableV(b, model)
		for _, tech := range []core.Technique{core.WeightPruned, core.ChannelPruned, core.Quantised} {
			inst := benchInstance(b, model, tech, pts)
			work := core.Workload(inst.Net, 1, inst.Config.Algo(), inst.Config.Format())
			b.Run(fmt.Sprintf("%s/%s", model, tech), func(b *testing.B) {
				var sim float64
				for i := 0; i < b.N; i++ {
					sim = od.NetworkTime(work, 8)
				}
				b.ReportMetric(sim, "sim-sec")
			})
		}
	}
}

// BenchmarkTab4Memory measures the footprint-accounting walk over the
// real full-size networks and reports the Table IV megabytes.
func BenchmarkTab4Memory(b *testing.B) {
	for _, model := range models.Names() {
		pts := tableIII(b, model)
		for _, tech := range core.Techniques() {
			inst := benchInstance(b, model, tech, pts)
			b.Run(fmt.Sprintf("%s/%s", model, tech), func(b *testing.B) {
				var mb float64
				for i := 0; i < b.N; i++ {
					mb = metrics.Measure(inst.Net, 1, inst.Config.Format()).MB()
				}
				b.ReportMetric(mb, "MB")
			})
		}
	}
}

// BenchmarkTab6Memory reports the Table VI megabytes (Table V points).
func BenchmarkTab6Memory(b *testing.B) {
	for _, model := range models.Names() {
		pts := tableV(b, model)
		for _, tech := range []core.Technique{core.WeightPruned, core.ChannelPruned, core.Quantised} {
			inst := benchInstance(b, model, tech, pts)
			b.Run(fmt.Sprintf("%s/%s", model, tech), func(b *testing.B) {
				var mb float64
				for i := 0; i < b.N; i++ {
					mb = metrics.Measure(inst.Net, 1, inst.Config.Format()).MB()
				}
				b.ReportMetric(mb, "MB")
			})
		}
	}
}

// BenchmarkFig6Backends reports the simulated backend comparison and the
// ImageNet-scale extension.
func BenchmarkFig6Backends(b *testing.B) {
	od, _ := hw.ByName("odroid-xu4")
	for _, model := range models.Names() {
		inst := benchInstance(b, model, core.Plain, map[core.Technique]core.OperatingPoint{core.Plain: {}})
		work := core.Workload(inst.Net, 1, nn.Direct, metrics.Dense)
		b.Run(model+"/openmp", func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				sim = od.NetworkTime(work, 8)
			}
			b.ReportMetric(sim, "sim-sec")
		})
		b.Run(model+"/opencl", func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				sim = core.SimulateGPUHandTuned(inst.Net, od.GPU)
			}
			b.ReportMetric(sim, "sim-sec")
		})
		b.Run(model+"/clblast", func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				sim = core.SimulateGPUCLBlast(inst.Net, od.GPU)
			}
			b.ReportMetric(sim, "sim-sec")
		})
	}
}

// BenchmarkGEMMTilingAblation measures the real host GEMM kernels across
// blocking configurations (DESIGN.md §5).
func BenchmarkGEMMTilingAblation(b *testing.B) {
	r := tensor.NewRNG(8)
	const m, k, n = 128, 128, 128
	A := tensor.New(m, k)
	B := tensor.New(k, n)
	A.FillNormal(r, 0, 1)
	B.FillNormal(r, 0, 1)
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = blas.GEMMNaive(A, B)
		}
	})
	for _, tile := range []blas.Tiling{{MC: 8, KC: 8, NC: 8}, blas.DefaultTiling(), {MC: 256, KC: 256, NC: 256}} {
		b.Run(fmt.Sprintf("blocked/%s", tile), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = blas.GEMMBlocked(A, B, tile)
			}
		})
	}
}

// BenchmarkCSRPenaltyAblation measures the real host dense-vs-CSR
// convolution penalty that underlies F1/F2 (DESIGN.md §5).
func BenchmarkCSRPenaltyAblation(b *testing.B) {
	for _, sparsity := range []float64{0.5, 0.9, 0.99} {
		for _, algo := range []nn.Algo{nn.Direct, nn.SparseDirect} {
			b.Run(fmt.Sprintf("sparsity=%.0f%%/%s", sparsity*100, algo), func(b *testing.B) {
				r := tensor.NewRNG(9)
				conv := nn.NewConv2D("c", benchConvGeom(), r)
				prune.ToSparsity(conv.W, sparsity)
				conv.Freeze()
				in := tensor.New(1, 64, 16, 16)
				in.FillNormal(r, 0, 1)
				ctx := nn.Inference()
				ctx.Algo = algo
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_ = conv.Forward(&ctx, in)
				}
			})
		}
	}
}

// BenchmarkSchedulingAblation measures real host static-vs-dynamic
// parallel-for scheduling over imbalanced work (DESIGN.md §5).
func BenchmarkSchedulingAblation(b *testing.B) {
	for _, threads := range []int{1, 2, 4} {
		for _, sched := range []string{"static", "dynamic"} {
			b.Run(fmt.Sprintf("threads=%d/%s", threads, sched), func(b *testing.B) {
				r := tensor.NewRNG(10)
				conv := nn.NewConv2D("c", benchConvGeom(), r)
				in := tensor.New(1, 64, 16, 16)
				in.FillNormal(r, 0, 1)
				ctx := nn.Inference()
				ctx.Threads = threads
				if sched == "static" {
					ctx.Sched = 0 // parallel.Static
				} else {
					ctx.Sched = 1 // parallel.Dynamic
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_ = conv.Forward(&ctx, in)
				}
			})
		}
	}
}

// benchConvGeom is the 64→64 3×3 layer used by the kernel ablations.
func benchConvGeom() sparse.ConvParams {
	return sparse.ConvParams{InC: 64, OutC: 64, KH: 3, KW: 3, Stride: 1, Pad: 1, Groups: 1}
}

// BenchmarkWinogradAblation measures the real host wall-clock of the
// three dense convolution algorithms on a Winograd-eligible layer — the
// Data Formats and Algorithms extension experiment.
func BenchmarkWinogradAblation(b *testing.B) {
	for _, algo := range []nn.Algo{nn.Direct, nn.Winograd, nn.Im2colGEMM} {
		b.Run(algo.String(), func(b *testing.B) {
			r := tensor.NewRNG(11)
			conv := nn.NewConv2D("c", benchConvGeom(), r)
			in := tensor.New(1, 64, 32, 32)
			in.FillNormal(r, 0, 1)
			ctx := nn.Inference()
			ctx.Algo = algo
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = conv.Forward(&ctx, in)
			}
		})
	}
}

// BenchmarkServeThroughput drives the batched serving subsystem
// (internal/serve, DESIGN.md §6) with a closed loop of concurrent
// clients over a mini model. ns/op is the per-request cost at the
// server; the custom metric is aggregate requests per second. Compare
// against BenchmarkFig4HostExecution's mini-vgg/plain single-image
// wall time for the batching overhead/gain.
func BenchmarkServeThroughput(b *testing.B) {
	srv, err := serve.New(serve.Config{
		Stacks: []serve.StackSpec{{Name: "m", Stack: core.Config{
			Model: "mini-vgg", Technique: core.Plain,
			Backend: core.OMP, Threads: 1, Platform: "odroid-xu4", Seed: 1,
		}}},
		Replicas: 2, MaxBatch: 4, MaxDelay: time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	const clients = 8
	imgs := make([]*tensor.Tensor, clients)
	for c := range imgs {
		imgs[c] = tensor.New(3, 32, 32)
		imgs[c].FillNormal(tensor.NewRNG(uint64(2*c+1)), 0, 1)
	}
	ctx := context.Background()
	var budget atomic.Int64
	budget.Store(int64(b.N))
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			req := serve.Request{Target: "m", Images: []*tensor.Tensor{imgs[c]}}
			for budget.Add(-1) >= 0 {
				rf, err := srv.Do(ctx, req)
				if err != nil {
					b.Error(err)
					return
				}
				if _, err := rf.Wait(ctx); err != nil {
					b.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "req/s")
}

// BenchmarkPlanInference compares the compiled-plan hot path against
// the eager allocating Forward on the same network and batch —
// allocs/op is the headline: the plan rows must report 0 B/op after
// warm-up, the eager rows the full per-inference churn.
func BenchmarkPlanInference(b *testing.B) {
	for _, batch := range []int{1, 8} {
		net, err := models.ByName("mini-vgg", tensor.NewRNG(13))
		if err != nil {
			b.Fatal(err)
		}
		in := tensor.New(batch, 3, 32, 32)
		in.FillNormal(tensor.NewRNG(14), 0, 1)
		b.Run(fmt.Sprintf("eager/batch=%d", batch), func(b *testing.B) {
			ctx := nn.Inference()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = net.Forward(&ctx, in)
			}
		})
		b.Run(fmt.Sprintf("plan/batch=%d", batch), func(b *testing.B) {
			plan, err := nn.Compile(net, nn.Inference(), in.Shape())
			if err != nil {
				b.Fatal(err)
			}
			plan.Execute(in) // warm-up outside the timer
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = plan.Execute(in)
			}
		})
		// The int8 path rides the same /plan/ 0-alloc CI gate: after
		// compilation a quantised plan must also run allocation-free.
		b.Run(fmt.Sprintf("plan/int8/batch=%d", batch), func(b *testing.B) {
			ctx := nn.Inference()
			ctx.Algo = nn.QuantInt8
			plan, err := nn.Compile(net, ctx, in.Shape())
			if err != nil {
				b.Fatal(err)
			}
			plan.Execute(in)
			// Compiling the quantised plan churns enough garbage that at
			// -benchtime 1x the deferred GC byproducts (≈48 B) otherwise
			// land inside the timed window and trip the 0-alloc gate.
			runtime.GC()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = plan.Execute(in)
			}
		})
	}
}

// BenchmarkDeepCompressionStorage measures the prune→ternary→Huffman
// storage estimator over a full-size network (the deepcomp experiment).
func BenchmarkDeepCompressionStorage(b *testing.B) {
	net, err := models.ByName("mobilenet", tensor.NewRNG(12))
	if err != nil {
		b.Fatal(err)
	}
	prune.NetworkToSparsity(net, 0.2346)
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := huffman.Measure(net)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(st.Dense) / float64(st.Huffman)
	}
	b.ReportMetric(ratio, "compression-x")
}

// BenchmarkTransportParity measures the wire overhead of every client
// transport against the in-process LocalClient on one loopback host:
// the same pool, the same closed loop (8 concurrent callers), the same
// images — only the transport changes. The DLW2 rows are the
// acceptance gate for the multiplexed session protocol: the mux path
// must land within ~1% of LocalClient and strictly above HTTP/1
// (EXPERIMENTS.md, transport section). The pipeline row replaces the
// closed loop with ONE streaming session keeping a 32-request window
// in flight — a single connection, single submitter saturating the
// backend.
func BenchmarkTransportParity(b *testing.B) {
	cfg := DefaultServerConfig()
	cfg.Stacks = []ServerStack{{Name: "m", Stack: StackConfig{
		Model: "mini-vgg", Technique: Plain,
		Backend: OMP, Threads: 1, Platform: "odroid-xu4", Seed: 1,
	}}}
	cfg.Replicas, cfg.MaxBatch, cfg.MaxDelay = 2, 4, time.Millisecond
	srv, err := NewServer(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(NewHTTPHandler(srv, 0))
	defer ts.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ml := NewMuxListener(srv, MuxListenerConfig{MaxInFlight: 256})
	go ml.Serve(ln)
	defer ml.Close()

	const clients = 8
	imgs := make([]*Tensor, clients)
	for c := range imgs {
		imgs[c] = NewImage(1, 32, 32, uint64(2*c+1))
	}
	ctx := context.Background()

	closed := func(b *testing.B, client Client) {
		var budget atomic.Int64
		budget.Store(int64(b.N))
		b.ResetTimer()
		start := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				req := Request{Target: "m", Images: []*Tensor{imgs[c]}}
				for budget.Add(-1) >= 0 {
					if _, err := client.InferSync(ctx, req); err != nil {
						b.Error(err)
						return
					}
				}
			}(c)
		}
		wg.Wait()
		b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "req/s")
	}

	b.Run("local", func(b *testing.B) {
		// Note: not Closed — the LocalClient owns the server shutdown.
		closed(b, NewLocalClient(srv))
	})
	b.Run("http", func(b *testing.B) {
		client := NewHTTPClient(ts.URL)
		defer client.Close()
		closed(b, client)
	})
	b.Run("dlw2", func(b *testing.B) {
		client := NewMuxClient(ln.Addr().String())
		defer client.Close()
		closed(b, client)
	})
	b.Run("dlw2-pipeline", func(b *testing.B) {
		client := NewMuxClient(ln.Addr().String())
		defer client.Close()
		sess, err := client.Session(ctx)
		if err != nil {
			b.Fatal(err)
		}
		defer sess.Close()
		req := Request{Target: "m", Images: []*Tensor{imgs[0]}}
		const window = 32
		b.ResetTimer()
		start := time.Now()
		inflight := 0
		for done := 0; done < b.N; {
			for inflight < window && done+inflight < b.N {
				if _, err := sess.Send(req); err != nil {
					b.Fatal(err)
				}
				inflight++
			}
			res, err := sess.Recv()
			if err != nil {
				b.Fatal(err)
			}
			if res.Err != nil {
				b.Fatal(res.Err)
			}
			inflight--
			done++
		}
		b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "req/s")
	})
}
